//! The on-disk entry envelope.
//!
//! Every store entry is one file: a fixed header followed by the
//! payload. The header carries a magic number, a format version, the
//! payload encoding ([`Encoding::Binary`] for the product codec,
//! [`Encoding::Json`] for small human-inspectable records), the
//! entry's full logical key (so a hash collision or a stale file can
//! never serve the wrong product), and an FNV-1a checksum of the
//! payload. [`open`] validates all of it; any failure is reported as
//! an [`EnvelopeError`], which the store layer above translates into a
//! cache miss — a corrupt or stale entry costs a recomputation, never
//! a wrong result.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      4 bytes  b"CQST"
//! version    u32      FORMAT_VERSION
//! checksum   u64      FNV-1a 64 over every byte that follows
//! encoding   u8       0 = binary codec, 1 = JSON
//! kind       str      length-prefixed UTF-8 (product kind)
//! key        str      length-prefixed UTF-8 (full logical key)
//! payload    bytes    length-prefixed raw bytes
//! ```
//!
//! The checksum covers the encoding tag, both strings, and the
//! payload, so a bit flip anywhere past the version field is detected
//! — including one that would silently relabel an entry's kind or key.

use chipletqc_math::codec::{ByteReader, ByteWriter, CodecError};

/// The envelope magic number.
pub const MAGIC: [u8; 4] = *b"CQST";

/// The envelope format version. Bump on any layout change; entries
/// written by other versions are treated as misses, never migrated in
/// place.
pub const FORMAT_VERSION: u32 = 1;

/// How an entry's payload bytes are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// The `chipletqc_math::codec` binary product codec.
    Binary,
    /// UTF-8 JSON (small tally records; inspectable with any editor).
    Json,
}

impl Encoding {
    /// The canonical lowercase spelling (the wire-protocol header
    /// value).
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Binary => "binary",
            Encoding::Json => "json",
        }
    }

    /// Parses the canonical spelling.
    pub fn parse(s: &str) -> Option<Encoding> {
        match s {
            "binary" => Some(Encoding::Binary),
            "json" => Some(Encoding::Json),
            _ => None,
        }
    }

    fn tag(self) -> u8 {
        match self {
            Encoding::Binary => 0,
            Encoding::Json => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Encoding, EnvelopeError> {
        match tag {
            0 => Ok(Encoding::Binary),
            1 => Ok(Encoding::Json),
            other => Err(EnvelopeError::BadEncoding(other)),
        }
    }
}

/// A validated, opened entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The product kind (e.g. `kgd-bin`).
    pub kind: String,
    /// The full logical key the entry was written under.
    pub key: String,
    /// The payload encoding.
    pub encoding: Encoding,
    /// The checksum-verified payload bytes.
    pub payload: Vec<u8>,
}

/// Why an entry failed to open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file was written by a different format version.
    UnsupportedVersion(u32),
    /// The encoding tag is unknown.
    BadEncoding(u8),
    /// The payload bytes do not match the stored checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum of the payload actually present.
        actual: u64,
    },
    /// The header or payload is truncated or malformed.
    Malformed(CodecError),
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeError::BadMagic => write!(f, "not a chipletqc-store entry (bad magic)"),
            EnvelopeError::UnsupportedVersion(v) => {
                write!(f, "format version {v} (this build reads {FORMAT_VERSION})")
            }
            EnvelopeError::BadEncoding(tag) => write!(f, "unknown encoding tag {tag}"),
            EnvelopeError::ChecksumMismatch { stored, actual } => {
                write!(f, "checksum mismatch: header {stored:#018x}, payload {actual:#018x}")
            }
            EnvelopeError::Malformed(e) => write!(f, "malformed envelope: {e}"),
        }
    }
}

impl std::error::Error for EnvelopeError {}

impl From<CodecError> for EnvelopeError {
    fn from(e: CodecError) -> EnvelopeError {
        EnvelopeError::Malformed(e)
    }
}

/// FNV-1a 64-bit over `bytes`, starting from `basis`.
pub(crate) fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut hash = basis;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The FNV-1a 64 offset basis (the checksum's starting state).
pub(crate) const FNV_OFFSET_BASIS: u64 = 0xCBF2_9CE4_8422_2325;

/// Seals `payload` into envelope bytes ready for an atomic write.
pub fn seal(kind: &str, key: &str, encoding: Encoding, payload: &[u8]) -> Vec<u8> {
    let mut body = ByteWriter::new();
    body.put_u8(encoding.tag());
    body.put_str(kind);
    body.put_str(key);
    body.put_usize(payload.len());
    body.put_bytes(payload);
    let body = body.into_bytes();
    let mut w = ByteWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u64(fnv1a64(&body, FNV_OFFSET_BASIS));
    w.put_bytes(&body);
    w.into_bytes()
}

/// Reads just the kind and full logical key from (a prefix of) entry
/// bytes — magic and version are checked, the checksum and payload
/// are deliberately NOT: this is the cheap path behind key listing,
/// where reading and checksumming every payload would make a `list`
/// cost the whole store in disk I/O. A peeked key is therefore *not*
/// a validity guarantee; [`open`] (via any `get`) still validates
/// fully before a payload is served.
pub fn peek_key(bytes: &[u8]) -> Option<(String, String)> {
    let mut r = ByteReader::new(bytes);
    if r.get_bytes(MAGIC.len()).ok()? != MAGIC {
        return None;
    }
    if r.get_u32().ok()? != FORMAT_VERSION {
        return None;
    }
    r.get_u64().ok()?; // checksum — deliberately unverified here
    r.get_u8().ok()?; // encoding tag
    let kind = r.get_str().ok()?;
    let key = r.get_str().ok()?;
    Some((kind, key))
}

/// Opens and fully validates envelope bytes.
pub fn open(bytes: &[u8]) -> Result<Envelope, EnvelopeError> {
    let mut r = ByteReader::new(bytes);
    if r.get_bytes(MAGIC.len())? != MAGIC {
        return Err(EnvelopeError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(EnvelopeError::UnsupportedVersion(version));
    }
    let stored = r.get_u64()?;
    let body = r.get_bytes(r.remaining())?;
    let actual = fnv1a64(body, FNV_OFFSET_BASIS);
    if actual != stored {
        return Err(EnvelopeError::ChecksumMismatch { stored, actual });
    }
    let mut r = ByteReader::new(body);
    let encoding = Encoding::from_tag(r.get_u8()?)?;
    let kind = r.get_str()?;
    let key = r.get_str()?;
    let len = r.get_len(1)?;
    let payload = r.get_bytes(len)?.to_vec();
    if !r.is_exhausted() {
        return Err(EnvelopeError::Malformed(CodecError::Invalid(format!(
            "{} trailing bytes",
            r.remaining()
        ))));
    }
    Ok(Envelope { kind, key, encoding, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_then_open_round_trips() {
        let bytes = seal("kgd-bin", "b400|s2022", Encoding::Binary, b"payload bytes");
        let envelope = open(&bytes).unwrap();
        assert_eq!(envelope.kind, "kgd-bin");
        assert_eq!(envelope.key, "b400|s2022");
        assert_eq!(envelope.encoding, Encoding::Binary);
        assert_eq!(envelope.payload, b"payload bytes");
    }

    #[test]
    fn peek_key_reads_headers_without_payloads() {
        let bytes = seal("kgd-bin", "b400|s2022\u{1f}10q", Encoding::Binary, &[0u8; 4096]);
        // The whole key is recoverable from a payload-free prefix…
        let prefix = &bytes[..64];
        assert_eq!(peek_key(prefix), Some(("kgd-bin".into(), "b400|s2022\u{1f}10q".into())));
        // …and survives payload corruption (peeking is optimistic by
        // design; `open` is where validity is decided)…
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert!(peek_key(&corrupt).is_some());
        assert!(open(&corrupt).is_err());
        // …but not bad magic, foreign versions, or a cut mid-key.
        assert_eq!(peek_key(b"NOPE"), None);
        assert_eq!(peek_key(&prefix[..20]), None);
        let mut foreign = bytes;
        foreign[4] = 99;
        assert_eq!(peek_key(&foreign), None);
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let bytes = seal("tally", "k", Encoding::Json, br#"{"survivors":3,"batch":10}"#);
        for cut in 0..bytes.len() {
            assert!(open(&bytes[..cut]).is_err(), "cut at {cut} opened");
        }
        assert!(open(&bytes).is_ok());
    }

    #[test]
    fn bit_flips_are_detected() {
        let bytes = seal("tally", "key", Encoding::Binary, b"sensitive");
        for i in 0..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0x01;
            assert!(open(&copy).is_err(), "flip at byte {i} went unnoticed");
        }
    }

    #[test]
    fn foreign_versions_and_encodings_are_rejected() {
        let mut bytes = seal("k", "key", Encoding::Binary, b"p");
        bytes[4] = 99; // version field
        assert_eq!(open(&bytes).unwrap_err(), EnvelopeError::UnsupportedVersion(99));
        // An unknown encoding tag (re-sealed so the checksum matches).
        let mut body = chipletqc_math::codec::ByteWriter::new();
        body.put_u8(7);
        body.put_str("k");
        body.put_str("key");
        body.put_usize(1);
        body.put_bytes(b"p");
        let body = body.into_bytes();
        let mut w = chipletqc_math::codec::ByteWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u64(fnv1a64(&body, FNV_OFFSET_BASIS));
        w.put_bytes(&body);
        assert_eq!(open(&w.into_bytes()).unwrap_err(), EnvelopeError::BadEncoding(7));
        assert_eq!(open(b"NOPE").unwrap_err(), EnvelopeError::BadMagic);
        assert!(open(b"CQ").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        // Appended bytes extend the checksummed body, so they surface
        // as a checksum mismatch.
        let mut bytes = seal("k", "key", Encoding::Binary, b"p");
        bytes.push(0);
        assert!(matches!(open(&bytes).unwrap_err(), EnvelopeError::ChecksumMismatch { .. }));
    }

    #[test]
    fn errors_display() {
        for e in [
            EnvelopeError::BadMagic,
            EnvelopeError::UnsupportedVersion(2),
            EnvelopeError::BadEncoding(9),
            EnvelopeError::ChecksumMismatch { stored: 1, actual: 2 },
            EnvelopeError::Malformed(CodecError::Invalid("x".into())),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
