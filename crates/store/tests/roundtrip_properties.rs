//! Property tests (vendored `proptest`) for the result store's
//! persistence formats: every persisted product kind round-trips
//! bit-exactly through its codec and the entry envelope, and arbitrary
//! corruption never yields a value — only a decode error (= a store
//! miss).

use proptest::prelude::*;

use chipletqc_assembly::kgd::{CharacterizedChiplet, KgdBin};
use chipletqc_collision::frequencies::Frequencies;
use chipletqc_math::codec::{decode_from_slice, encode_to_vec};
use chipletqc_noise::assign::EdgeNoise;
use chipletqc_store::envelope::{self, Encoding};
use chipletqc_store::products::{
    chunk_cover, tally_chunk_from_json, tally_chunk_to_json, CHUNK_TRIALS,
};
use chipletqc_yield::monte_carlo::{TrialRange, YieldEstimate};

/// Frequencies from raw per-qubit values (pinned finite by the ranges).
fn frequencies(freqs: Vec<f64>, alphas: Vec<f64>) -> Frequencies {
    let n = freqs.len().min(alphas.len());
    Frequencies::new(freqs[..n].to_vec(), alphas[..n].to_vec()).expect("finite inputs")
}

proptest! {
    /// `Frequencies` round-trips bit-exactly (including values with no
    /// short decimal representation).
    #[test]
    fn frequencies_round_trip(
        freqs in prop::collection::vec(4.0f64..6.0, 0..40),
        alphas in prop::collection::vec(-0.4f64..-0.2, 0..40),
    ) {
        let value = frequencies(freqs, alphas);
        let bytes = encode_to_vec(&value);
        let decoded: Frequencies = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(decoded, value);
    }

    /// `EdgeNoise` round-trips bit-exactly.
    #[test]
    fn edge_noise_round_trips(infidelities in prop::collection::vec(0.0f64..0.999, 0..60)) {
        let value = EdgeNoise::from_infidelities(infidelities);
        let bytes = encode_to_vec(&value);
        let decoded: EdgeNoise = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(decoded, value);
    }

    /// Tallies and trial ranges round-trip through the binary codec.
    #[test]
    fn tallies_and_ranges_round_trip(survivors in 0usize..5000, extra in 0usize..5000) {
        let est = YieldEstimate { survivors, batch: survivors + extra };
        prop_assert_eq!(decode_from_slice::<YieldEstimate>(&encode_to_vec(&est)).unwrap(), est);
        let range = TrialRange { start: survivors, end: survivors + extra };
        prop_assert_eq!(decode_from_slice::<TrialRange>(&encode_to_vec(&range)).unwrap(), range);
    }

    /// A characterized KGD bin round-trips bit-exactly: the sort
    /// order, each chiplet's frequencies/noise, and the derived eavg.
    #[test]
    fn kgd_bins_round_trip(
        raw in prop::collection::vec(
            (
                prop::collection::vec(4.8f64..5.3, 10),
                prop::collection::vec(0.001f64..0.2, 11),
            ),
            0..12,
        ),
    ) {
        let chiplets: Vec<CharacterizedChiplet> = raw
            .into_iter()
            .map(|(freqs, noise)| {
                let noise = EdgeNoise::from_infidelities(noise);
                CharacterizedChiplet {
                    eavg: noise.eavg(),
                    freqs: Frequencies::with_uniform_alpha(freqs, -0.33).unwrap(),
                    noise,
                }
            })
            .collect();
        let bin = KgdBin::from_chiplets(chiplets);
        let bytes = encode_to_vec(&bin);
        let decoded: KgdBin = decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(decoded, bin);
    }

    /// The envelope preserves any payload under both encodings, and
    /// truncating it anywhere is an error, never a wrong payload.
    #[test]
    fn envelopes_round_trip_and_reject_truncation(
        payload in prop::collection::vec(0u8..=255, 0..200),
        kind_pick in 0u8..4,
        cut_fraction in 0.0f64..1.0,
        json_pick in 0u8..2,
    ) {
        let kind = ["kgd-bin", "mono-pop", "raw-bin", "tally"][kind_pick as usize];
        let encoding = if json_pick == 1 { Encoding::Json } else { Encoding::Binary };
        let sealed = envelope::seal(kind, "prop-key", encoding, &payload);
        let opened = envelope::open(&sealed).unwrap();
        prop_assert_eq!(opened.kind.as_str(), kind);
        prop_assert_eq!(opened.key.as_str(), "prop-key");
        prop_assert_eq!(opened.encoding, encoding);
        prop_assert_eq!(opened.payload, payload);
        let cut = ((sealed.len() as f64) * cut_fraction) as usize;
        if cut < sealed.len() {
            prop_assert!(envelope::open(&sealed[..cut]).is_err());
        }
    }

    /// Single-bit corruption anywhere in a sealed entry is detected.
    #[test]
    fn envelopes_detect_any_bit_flip(
        payload in prop::collection::vec(0u8..=255, 1..120),
        position_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let sealed = envelope::seal("tally", "bitflip-key", Encoding::Binary, &payload);
        let position = (((sealed.len() - 1) as f64) * position_fraction) as usize;
        let mut corrupt = sealed.clone();
        corrupt[position] ^= 1 << bit;
        prop_assert!(envelope::open(&corrupt).is_err(), "flip at byte {}", position);
    }

    /// The tally-chunk JSON payload round-trips exactly.
    #[test]
    fn tally_chunk_json_round_trips(
        chunk_index in 0usize..64,
        offsets in prop::collection::vec(0usize..CHUNK_TRIALS, 0..64),
    ) {
        let chunk = TrialRange {
            start: chunk_index * CHUNK_TRIALS,
            end: (chunk_index + 1) * CHUNK_TRIALS,
        };
        let mut indices: Vec<usize> =
            offsets.into_iter().map(|o| chunk.start + o).collect();
        indices.sort_unstable();
        indices.dedup();
        let json = tally_chunk_to_json(chunk, &indices);
        prop_assert_eq!(tally_chunk_from_json(&json), Some((chunk, indices)));
    }

    /// Canonical chunk covers are aligned, contiguous, and cover every
    /// requested range.
    #[test]
    fn chunk_cover_always_covers(start in 0usize..10_000, len in 1usize..10_000) {
        let range = TrialRange { start, end: start + len };
        let chunks = chunk_cover(range, CHUNK_TRIALS);
        prop_assert!(chunks.first().unwrap().start <= range.start);
        prop_assert!(chunks.last().unwrap().end >= range.end);
        prop_assert!(range.start - chunks.first().unwrap().start < CHUNK_TRIALS);
        prop_assert!(chunks.last().unwrap().end - range.end < CHUNK_TRIALS);
        for (i, c) in chunks.iter().enumerate() {
            prop_assert_eq!(c.start % CHUNK_TRIALS, 0);
            prop_assert_eq!(c.len(), CHUNK_TRIALS);
            if i > 0 {
                prop_assert_eq!(chunks[i - 1].end, c.start);
            }
        }
    }
}
