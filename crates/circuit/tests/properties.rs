//! Property tests for the circuit IR.

use proptest::prelude::*;

use chipletqc_circuit::circuit::Circuit;
use chipletqc_circuit::gate::Gate;
use chipletqc_circuit::qasm::to_qasm;
use chipletqc_circuit::qubit::Qubit;

/// A strategy producing arbitrary valid gates over `n` qubits (n >= 2).
fn arb_gate(n: u32) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let pair = (0..n, 0..n - 1).prop_map(move |(a, d)| {
        let b = (a + 1 + d) % n;
        (a, b)
    });
    prop_oneof![
        (q.clone(), -6.3f64..6.3).prop_map(|(q, theta)| Gate::Rz { q: Qubit(q), theta }),
        q.clone().prop_map(|q| Gate::Sx { q: Qubit(q) }),
        q.clone().prop_map(|q| Gate::X { q: Qubit(q) }),
        q.clone().prop_map(|q| Gate::H { q: Qubit(q) }),
        (q.clone(), -6.3f64..6.3).prop_map(|(q, theta)| Gate::Rx { q: Qubit(q), theta }),
        (q.clone(), -6.3f64..6.3).prop_map(|(q, theta)| Gate::Ry { q: Qubit(q), theta }),
        pair.clone().prop_map(|(a, b)| Gate::Cx { control: Qubit(a), target: Qubit(b) }),
        pair.clone().prop_map(|(a, b)| Gate::Swap { a: Qubit(a), b: Qubit(b) }),
        (pair, -6.3f64..6.3).prop_map(|((a, b), theta)| Gate::Rzz {
            a: Qubit(a),
            b: Qubit(b),
            theta
        }),
        q.prop_map(|q| Gate::Measure { q: Qubit(q) }),
    ]
}

fn arb_circuit(n: u32, max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 0..max_len).prop_map(move |gates| {
        let mut c = Circuit::new(n as usize);
        for g in gates {
            c.push(g);
        }
        c
    })
}

proptest! {
    /// Count identities: 1q + 2q + measurements == total.
    #[test]
    fn counts_partition_the_gate_list(c in arb_circuit(6, 120)) {
        prop_assert_eq!(c.count_1q() + c.count_2q() + c.count_measurements(), c.len());
    }

    /// Depth bounds: critical-2q <= 2q count, depth <= len, and depth
    /// >= ceil(len / n) (pigeonhole over qubits).
    #[test]
    fn depth_bounds(c in arb_circuit(5, 100)) {
        prop_assert!(c.two_qubit_critical_path() <= c.count_2q());
        prop_assert!(c.depth() <= c.len());
        if !c.is_empty() {
            let lower = c.len().div_ceil(2 * c.num_qubits());
            prop_assert!(c.depth() >= lower.min(1));
        }
    }

    /// Appending concatenates counts and can only deepen the circuit.
    #[test]
    fn append_is_additive(a in arb_circuit(4, 60), b in arb_circuit(4, 60)) {
        let mut joined = Circuit::new(4);
        joined.append(&a);
        joined.append(&b);
        prop_assert_eq!(joined.len(), a.len() + b.len());
        prop_assert_eq!(joined.count_2q(), a.count_2q() + b.count_2q());
        prop_assert!(joined.depth() >= a.depth().max(b.depth()));
        prop_assert!(joined.depth() <= a.depth() + b.depth());
    }

    /// QASM export emits one statement per gate (RZZ expands to 3) and
    /// parses back structurally: statement count matches.
    #[test]
    fn qasm_statement_count(c in arb_circuit(5, 80)) {
        let qasm = to_qasm(&c);
        let rzz = c.gates().iter().filter(|g| matches!(g, Gate::Rzz { .. })).count();
        let stmts = qasm
            .lines()
            .filter(|l| !l.starts_with("OPENQASM") && !l.starts_with("include")
                && !l.starts_with("qreg") && !l.starts_with("creg") && !l.starts_with("//")
                && !l.is_empty())
            .count();
        prop_assert_eq!(stmts, c.len() + 2 * rzz);
    }

    /// Two-qubit critical path is invariant under inserting 1q gates.
    #[test]
    fn critical_path_ignores_added_1q(c in arb_circuit(4, 60), q in 0u32..4) {
        let mut extended = Circuit::new(4);
        extended.append(&c);
        extended.h(Qubit(q));
        prop_assert_eq!(extended.two_qubit_critical_path(), c.two_qubit_critical_path());
    }
}
