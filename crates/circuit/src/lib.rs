//! Quantum circuit intermediate representation.
//!
//! The program substrate of the `chipletqc` workspace: a lightweight
//! gate-list IR with the operations the paper's benchmarks need
//! (single-qubit rotations, `CX`/`SWAP`/`RZZ`, measurement), plus the
//! structural analyses the evaluation reports (Table II): gate counts by
//! arity, circuit depth, and the **two-qubit critical path** — the
//! longest chain of two-qubit gates through the dependency DAG.
//!
//! * [`gate`] — the gate set and per-gate queries;
//! * [`circuit`] — [`circuit::Circuit`]: construction, validation,
//!   counting;
//! * [`depth`] — ASAP depth and weighted critical paths;
//! * [`qasm`] — OpenQASM 2.0 export for interoperability.
//!
//! # Example
//!
//! ```
//! use chipletqc_circuit::circuit::Circuit;
//! use chipletqc_circuit::qubit::Qubit;
//!
//! let mut c = Circuit::new(3);
//! c.h(Qubit(0));
//! c.cx(Qubit(0), Qubit(1));
//! c.cx(Qubit(1), Qubit(2));
//! assert_eq!(c.count_2q(), 2);
//! assert_eq!(c.two_qubit_critical_path(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod depth;
pub mod gate;
pub mod qasm;
pub mod qubit;

pub use circuit::{Circuit, GateCounts};
pub use gate::Gate;
pub use qubit::Qubit;
