//! OpenQASM 2.0 export.
//!
//! Lets every benchmark and transpiled circuit in the workspace be
//! inspected with standard tooling. `RZZ` is emitted via its
//! `CX·RZ·CX` identity since OpenQASM 2.0's `qelib1` lacks a native
//! `rzz` only in some dialects — we emit the portable form.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Renders the circuit as an OpenQASM 2.0 program.
///
/// # Example
///
/// ```
/// use chipletqc_circuit::circuit::Circuit;
/// use chipletqc_circuit::qubit::Qubit;
/// use chipletqc_circuit::qasm::to_qasm;
///
/// let mut c = Circuit::new(2);
/// c.h(Qubit(0)).cx(Qubit(0), Qubit(1));
/// let qasm = to_qasm(&c);
/// assert!(qasm.contains("OPENQASM 2.0"));
/// assert!(qasm.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    if !circuit.name().is_empty() {
        let _ = writeln!(out, "// {}", circuit.name());
    }
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    if circuit.count_measurements() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_qubits());
    }
    for gate in circuit.gates() {
        match *gate {
            Gate::Rz { q, theta } => {
                let _ = writeln!(out, "rz({theta}) q[{}];", q.0);
            }
            Gate::Sx { q } => {
                let _ = writeln!(out, "sx q[{}];", q.0);
            }
            Gate::X { q } => {
                let _ = writeln!(out, "x q[{}];", q.0);
            }
            Gate::H { q } => {
                let _ = writeln!(out, "h q[{}];", q.0);
            }
            Gate::Rx { q, theta } => {
                let _ = writeln!(out, "rx({theta}) q[{}];", q.0);
            }
            Gate::Ry { q, theta } => {
                let _ = writeln!(out, "ry({theta}) q[{}];", q.0);
            }
            Gate::Cx { control, target } => {
                let _ = writeln!(out, "cx q[{}],q[{}];", control.0, target.0);
            }
            Gate::Swap { a, b } => {
                let _ = writeln!(out, "swap q[{}],q[{}];", a.0, b.0);
            }
            Gate::Rzz { a, b, theta } => {
                let _ = writeln!(out, "cx q[{}],q[{}];", a.0, b.0);
                let _ = writeln!(out, "rz({theta}) q[{}];", b.0);
                let _ = writeln!(out, "cx q[{}],q[{}];", a.0, b.0);
            }
            Gate::Measure { q } => {
                let _ = writeln!(out, "measure q[{}] -> c[{}];", q.0, q.0);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::Qubit;

    #[test]
    fn header_and_registers() {
        let mut c = Circuit::named(3, "bv");
        c.h(Qubit(0)).measure(Qubit(0));
        let qasm = to_qasm(&c);
        assert!(qasm.starts_with("OPENQASM 2.0;\n"));
        assert!(qasm.contains("qreg q[3];"));
        assert!(qasm.contains("creg c[3];"));
        assert!(qasm.contains("// bv"));
        assert!(qasm.contains("measure q[0] -> c[0];"));
    }

    #[test]
    fn no_creg_without_measurement() {
        let mut c = Circuit::new(1);
        c.x(Qubit(0));
        assert!(!to_qasm(&c).contains("creg"));
    }

    #[test]
    fn rzz_expands_portably() {
        let mut c = Circuit::new(2);
        c.rzz(Qubit(0), Qubit(1), 0.5);
        let qasm = to_qasm(&c);
        assert_eq!(qasm.matches("cx q[0],q[1];").count(), 2);
        assert!(qasm.contains("rz(0.5) q[1];"));
    }

    #[test]
    fn every_gate_variant_renders() {
        let mut c = Circuit::new(2);
        c.rz(Qubit(0), 0.1)
            .sx(Qubit(0))
            .x(Qubit(0))
            .h(Qubit(0))
            .rx(Qubit(0), 0.2)
            .ry(Qubit(0), 0.3)
            .cx(Qubit(0), Qubit(1))
            .swap(Qubit(0), Qubit(1))
            .rzz(Qubit(0), Qubit(1), 0.4)
            .measure(Qubit(1));
        let qasm = to_qasm(&c);
        for token in
            ["rz(0.1)", "sx ", "x ", "h ", "rx(0.2)", "ry(0.3)", "cx ", "swap ", "measure "]
        {
            assert!(qasm.contains(token), "missing {token} in:\n{qasm}");
        }
    }
}
