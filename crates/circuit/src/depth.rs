//! ASAP depth and weighted critical paths.
//!
//! Gates depend on each other exactly when they share a qubit; the
//! dependency DAG's longest path under a per-gate weight gives circuit
//! depth (all weights 1) and the **two-qubit critical path** (weight 1
//! for two-qubit gates, 0 otherwise) — the quantity Table II reports,
//! since two-qubit gates dominate both error and duration on transmon
//! hardware.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Longest path with per-gate weights given by `weight`.
///
/// Linear in circuit size: each gate's finish level is
/// `max(frontier of its qubits) + weight`, and the frontier advances to
/// that level on all its qubits.
pub fn weighted_depth(circuit: &Circuit, mut weight: impl FnMut(&Gate) -> usize) -> usize {
    let mut frontier = vec![0usize; circuit.num_qubits()];
    let mut best = 0;
    for gate in circuit.gates() {
        let w = weight(gate);
        let level = gate.qubits().iter().map(|q| frontier[q.index()]).max().unwrap_or(0) + w;
        for q in gate.qubits().iter() {
            frontier[q.index()] = level;
        }
        best = best.max(level);
    }
    best
}

/// Full circuit depth (every gate, including measurement, weight 1).
pub fn depth(circuit: &Circuit) -> usize {
    weighted_depth(circuit, |_| 1)
}

/// The two-qubit critical path: the longest chain of two-qubit gates.
pub fn two_qubit_critical_path(circuit: &Circuit) -> usize {
    weighted_depth(circuit, |g| usize::from(g.is_two_qubit()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::Qubit;

    #[test]
    fn parallel_gates_share_a_level() {
        let mut c = Circuit::new(4);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(2), Qubit(3)); // disjoint: same level
        assert_eq!(depth(&c), 1);
        assert_eq!(two_qubit_critical_path(&c), 1);
    }

    #[test]
    fn chains_accumulate() {
        let mut c = Circuit::new(3);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(1), Qubit(2));
        c.cx(Qubit(0), Qubit(1));
        assert_eq!(two_qubit_critical_path(&c), 3);
    }

    #[test]
    fn one_qubit_gates_do_not_count_toward_2q_path() {
        let mut c = Circuit::new(2);
        for _ in 0..10 {
            c.h(Qubit(0));
        }
        c.cx(Qubit(0), Qubit(1));
        assert_eq!(depth(&c), 11);
        assert_eq!(two_qubit_critical_path(&c), 1);
    }

    #[test]
    fn one_qubit_gates_still_order_two_qubit_gates() {
        // CX - H - CX on the same qubit: the H forces sequence but adds
        // no 2q weight.
        let mut c = Circuit::new(2);
        c.cx(Qubit(0), Qubit(1));
        c.h(Qubit(0));
        c.cx(Qubit(0), Qubit(1));
        assert_eq!(two_qubit_critical_path(&c), 2);
        assert_eq!(depth(&c), 3);
    }

    #[test]
    fn ghz_chain_depth_is_linear() {
        let n = 16;
        let mut c = Circuit::new(n);
        c.h(Qubit(0));
        for i in 0..n - 1 {
            c.cx(Qubit(i as u32), Qubit(i as u32 + 1));
        }
        assert_eq!(two_qubit_critical_path(&c), n - 1);
    }

    #[test]
    fn measurement_counts_in_depth_only() {
        let mut c = Circuit::new(1);
        c.x(Qubit(0)).measure(Qubit(0));
        assert_eq!(depth(&c), 2);
        assert_eq!(two_qubit_critical_path(&c), 0);
    }
}
