//! The gate set.
//!
//! Covers what the paper's benchmarks and the IBM-style basis need:
//! virtual-Z rotations (`RZ`), the physical `SX`/`X` pulses, the
//! convenience rotations `H`/`RX`/`RY`, the entangling `CX`, the
//! routing `SWAP`, the Ising coupling `RZZ` (QAOA and TFIM), and
//! terminal `Measure`.

use crate::qubit::Qubit;

/// One circuit operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Z-axis rotation by `theta` (virtual on IBM hardware, but counted
    /// as a 1q gate in Table II-style tallies).
    Rz {
        /// Target qubit.
        q: Qubit,
        /// Rotation angle (radians).
        theta: f64,
    },
    /// The √X pulse.
    Sx {
        /// Target qubit.
        q: Qubit,
    },
    /// The X (π) pulse.
    X {
        /// Target qubit.
        q: Qubit,
    },
    /// Hadamard.
    H {
        /// Target qubit.
        q: Qubit,
    },
    /// X-axis rotation.
    Rx {
        /// Target qubit.
        q: Qubit,
        /// Rotation angle (radians).
        theta: f64,
    },
    /// Y-axis rotation.
    Ry {
        /// Target qubit.
        q: Qubit,
        /// Rotation angle (radians).
        theta: f64,
    },
    /// Controlled-X.
    Cx {
        /// Control qubit.
        control: Qubit,
        /// Target qubit.
        target: Qubit,
    },
    /// Qubit exchange (decomposes to 3 `CX` on hardware).
    Swap {
        /// First qubit.
        a: Qubit,
        /// Second qubit.
        b: Qubit,
    },
    /// The two-qubit Ising interaction `exp(-i θ/2 Z⊗Z)`.
    Rzz {
        /// First qubit.
        a: Qubit,
        /// Second qubit.
        b: Qubit,
        /// Rotation angle (radians).
        theta: f64,
    },
    /// Computational-basis measurement.
    Measure {
        /// Measured qubit.
        q: Qubit,
    },
}

impl Gate {
    /// The qubits this gate touches (one or two).
    pub fn qubits(&self) -> GateQubits {
        match *self {
            Gate::Rz { q, .. }
            | Gate::Sx { q }
            | Gate::X { q }
            | Gate::H { q }
            | Gate::Rx { q, .. }
            | Gate::Ry { q, .. }
            | Gate::Measure { q } => GateQubits::One(q),
            Gate::Cx { control, target } => GateQubits::Two(control, target),
            Gate::Swap { a, b } | Gate::Rzz { a, b, .. } => GateQubits::Two(a, b),
        }
    }

    /// Whether this is a two-qubit operation.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self.qubits(), GateQubits::Two(..))
    }

    /// Whether this is a single-qubit *gate* (measurement excluded —
    /// Table II counts gates, not readout).
    pub fn is_one_qubit_gate(&self) -> bool {
        !self.is_two_qubit() && !matches!(self, Gate::Measure { .. })
    }

    /// The lowercase mnemonic (matches the OpenQASM name).
    pub fn name(&self) -> &'static str {
        match self {
            Gate::Rz { .. } => "rz",
            Gate::Sx { .. } => "sx",
            Gate::X { .. } => "x",
            Gate::H { .. } => "h",
            Gate::Rx { .. } => "rx",
            Gate::Ry { .. } => "ry",
            Gate::Cx { .. } => "cx",
            Gate::Swap { .. } => "swap",
            Gate::Rzz { .. } => "rzz",
            Gate::Measure { .. } => "measure",
        }
    }

    /// Whether the gate is already in the IBM-style physical basis
    /// {RZ, SX, X, CX} (+ measurement).
    pub fn is_basis(&self) -> bool {
        matches!(
            self,
            Gate::Rz { .. }
                | Gate::Sx { .. }
                | Gate::X { .. }
                | Gate::Cx { .. }
                | Gate::Measure { .. }
        )
    }
}

/// The qubits of one gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateQubits {
    /// A single-qubit operation.
    One(Qubit),
    /// A two-qubit operation.
    Two(Qubit, Qubit),
}

impl GateQubits {
    /// Iterator over the qubits.
    pub fn iter(self) -> impl Iterator<Item = Qubit> {
        let (first, second) = match self {
            GateQubits::One(q) => (q, None),
            GateQubits::Two(a, b) => (a, Some(b)),
        };
        std::iter::once(first).chain(second)
    }

    /// The highest qubit index involved.
    pub fn max_index(self) -> usize {
        self.iter().map(Qubit::index).max().expect("at least one qubit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_classification() {
        assert!(Gate::Cx { control: Qubit(0), target: Qubit(1) }.is_two_qubit());
        assert!(Gate::Swap { a: Qubit(0), b: Qubit(1) }.is_two_qubit());
        assert!(Gate::Rzz { a: Qubit(0), b: Qubit(1), theta: 0.3 }.is_two_qubit());
        assert!(!Gate::H { q: Qubit(0) }.is_two_qubit());
        assert!(Gate::H { q: Qubit(0) }.is_one_qubit_gate());
        assert!(!Gate::Measure { q: Qubit(0) }.is_one_qubit_gate());
    }

    #[test]
    fn basis_membership() {
        assert!(Gate::Rz { q: Qubit(0), theta: 1.0 }.is_basis());
        assert!(Gate::Sx { q: Qubit(0) }.is_basis());
        assert!(!Gate::H { q: Qubit(0) }.is_basis());
        assert!(!Gate::Swap { a: Qubit(0), b: Qubit(1) }.is_basis());
    }

    #[test]
    fn qubit_iteration() {
        let g = Gate::Cx { control: Qubit(3), target: Qubit(7) };
        let qs: Vec<Qubit> = g.qubits().iter().collect();
        assert_eq!(qs, vec![Qubit(3), Qubit(7)]);
        assert_eq!(g.qubits().max_index(), 7);
        let h = Gate::X { q: Qubit(2) };
        assert_eq!(h.qubits().iter().count(), 1);
    }

    #[test]
    fn names_match_qasm() {
        assert_eq!(Gate::Rz { q: Qubit(0), theta: 0.1 }.name(), "rz");
        assert_eq!(Gate::Measure { q: Qubit(0) }.name(), "measure");
    }
}
