//! Logical qubit identity.

/// A logical (program) qubit index.
///
/// Deliberately a different type from the physical
/// `chipletqc_topology::qubit::QubitId`: the transpiler owns the mapping
/// between the two, and the type system keeps them from mixing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Qubit(pub u32);

impl Qubit {
    /// The index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Qubit {
    fn from(value: u32) -> Self {
        Qubit(value)
    }
}

impl std::fmt::Display for Qubit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let q = Qubit::from(5u32);
        assert_eq!(q.index(), 5);
        assert_eq!(q.to_string(), "q5");
    }
}
