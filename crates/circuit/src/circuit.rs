//! Circuit construction and gate counting.

use crate::depth;
use crate::gate::Gate;
use crate::qubit::Qubit;

/// Gate tallies in the Table II style: single-qubit gates, two-qubit
/// gates, and the two-qubit critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCounts {
    /// Single-qubit gates (measurements excluded).
    pub one_qubit: usize,
    /// Two-qubit gates.
    pub two_qubit: usize,
    /// Longest two-qubit-gate chain through the dependency DAG.
    pub two_qubit_critical: usize,
}

impl std::fmt::Display for GateCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} / {} / {}", self.one_qubit, self.two_qubit, self.two_qubit_critical)
    }
}

/// An ordered list of gates over `num_qubits` logical qubits.
///
/// Builder methods validate qubit indices eagerly (C-VALIDATE), so a
/// malformed benchmark fails at construction, not deep inside a
/// transpile.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
    name: String,
}

impl Circuit {
    /// An empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Circuit {
        Circuit { num_qubits, gates: Vec::new(), name: String::new() }
    }

    /// An empty named circuit (names flow into QASM headers and
    /// reports).
    pub fn named(num_qubits: usize, name: impl Into<String>) -> Circuit {
        Circuit { num_qubits, gates: Vec::new(), name: name.into() }
    }

    /// The circuit name (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of logical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gate list in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends an arbitrary gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a qubit outside the circuit, or if a
    /// two-qubit gate repeats a qubit.
    pub fn push(&mut self, gate: Gate) {
        let qs = gate.qubits();
        assert!(
            qs.max_index() < self.num_qubits,
            "{} touches qubit outside circuit of {} qubits",
            gate.name(),
            self.num_qubits
        );
        if let crate::gate::GateQubits::Two(a, b) = qs {
            assert_ne!(a, b, "{} with repeated qubit {a}", gate.name());
        }
        self.gates.push(gate);
    }

    /// Appends RZ(θ).
    pub fn rz(&mut self, q: Qubit, theta: f64) -> &mut Self {
        self.push(Gate::Rz { q, theta });
        self
    }

    /// Appends √X.
    pub fn sx(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Sx { q });
        self
    }

    /// Appends X.
    pub fn x(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::X { q });
        self
    }

    /// Appends H.
    pub fn h(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::H { q });
        self
    }

    /// Appends RX(θ).
    pub fn rx(&mut self, q: Qubit, theta: f64) -> &mut Self {
        self.push(Gate::Rx { q, theta });
        self
    }

    /// Appends RY(θ).
    pub fn ry(&mut self, q: Qubit, theta: f64) -> &mut Self {
        self.push(Gate::Ry { q, theta });
        self
    }

    /// Appends CX.
    pub fn cx(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.push(Gate::Cx { control, target });
        self
    }

    /// Appends SWAP.
    pub fn swap(&mut self, a: Qubit, b: Qubit) -> &mut Self {
        self.push(Gate::Swap { a, b });
        self
    }

    /// Appends RZZ(θ).
    pub fn rzz(&mut self, a: Qubit, b: Qubit, theta: f64) -> &mut Self {
        self.push(Gate::Rzz { a, b, theta });
        self
    }

    /// Appends a measurement.
    pub fn measure(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Measure { q });
        self
    }

    /// Measures every qubit.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.num_qubits as u32 {
            self.push(Gate::Measure { q: Qubit(q) });
        }
        self
    }

    /// Appends all gates of `other` (same qubit space).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than this circuit.
    pub fn append(&mut self, other: &Circuit) {
        assert!(
            other.num_qubits <= self.num_qubits,
            "appending a {}-qubit circuit onto {} qubits",
            other.num_qubits,
            self.num_qubits
        );
        self.gates.extend_from_slice(&other.gates);
    }

    /// Total gates (including measurements).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Single-qubit gate count (measurements excluded).
    pub fn count_1q(&self) -> usize {
        self.gates.iter().filter(|g| g.is_one_qubit_gate()).count()
    }

    /// Two-qubit gate count.
    pub fn count_2q(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Measurement count.
    pub fn count_measurements(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::Measure { .. })).count()
    }

    /// Full circuit depth (every gate weight 1).
    pub fn depth(&self) -> usize {
        depth::depth(self)
    }

    /// The two-qubit critical path (Table II's third column).
    pub fn two_qubit_critical_path(&self) -> usize {
        depth::two_qubit_critical_path(self)
    }

    /// The Table II tally.
    pub fn counts(&self) -> GateCounts {
        GateCounts {
            one_qubit: self.count_1q(),
            two_qubit: self.count_2q(),
            two_qubit_critical: self.two_qubit_critical_path(),
        }
    }
}

impl std::fmt::Display for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} qubits, {} gates (1q/2q/2q-critical = {})",
            if self.name.is_empty() { "circuit" } else { &self.name },
            self.num_qubits,
            self.gates.len(),
            self.counts()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).cx(Qubit(0), Qubit(1)).measure_all();
        assert_eq!(c.len(), 4);
        assert_eq!(c.count_1q(), 1);
        assert_eq!(c.count_2q(), 1);
        assert_eq!(c.count_measurements(), 2);
    }

    #[test]
    #[should_panic(expected = "outside circuit")]
    fn rejects_out_of_range() {
        Circuit::new(2).h(Qubit(2));
    }

    #[test]
    #[should_panic(expected = "repeated qubit")]
    fn rejects_degenerate_two_qubit() {
        Circuit::new(2).cx(Qubit(1), Qubit(1));
    }

    #[test]
    fn counts_struct() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0)).cx(Qubit(0), Qubit(1)).cx(Qubit(1), Qubit(2)).rz(Qubit(2), 0.5);
        let counts = c.counts();
        assert_eq!(counts.one_qubit, 2);
        assert_eq!(counts.two_qubit, 2);
        assert_eq!(counts.two_qubit_critical, 2);
        assert_eq!(counts.to_string(), "2 / 2 / 2");
    }

    #[test]
    fn append_respects_sizes() {
        let mut big = Circuit::new(4);
        let mut small = Circuit::new(2);
        small.cx(Qubit(0), Qubit(1));
        big.append(&small);
        assert_eq!(big.count_2q(), 1);
    }

    #[test]
    #[should_panic(expected = "appending")]
    fn append_rejects_larger() {
        let mut small = Circuit::new(1);
        let big = Circuit::new(2);
        small.append(&big);
    }

    #[test]
    fn named_display() {
        let mut c = Circuit::named(1, "demo");
        c.x(Qubit(0));
        assert!(c.to_string().starts_with("demo:"));
        assert_eq!(c.name(), "demo");
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(5);
        assert!(c.is_empty());
        assert_eq!(c.depth(), 0);
        assert_eq!(c.two_qubit_critical_path(), 0);
    }
}
