//! `chipletqc-check` — a workspace invariant checker. Std-only, zero
//! deps, consistent with the vendored no-network policy.
//!
//! The reproduction's contract — `RunReport` bytes identical at any
//! worker count, shard count, transport, or mesh shape, served by a
//! daemon that never dies — is enforced dynamically by tests that
//! sample a few configurations. This crate enforces the
//! *preconditions* statically, on every source file, every run.
//!
//! Analysis is two-pass: pass 1 builds a whole-workspace
//! [`symbols::SymbolIndex`] (fn definitions, classed lock sites,
//! name-resolved call edges, sweep axes) from the lexer output; pass 2
//! runs five local rules per file and three graph rules over the
//! index:
//!
//! * **unordered-iteration** — no `HashMap`/`HashSet` on the
//!   determinism surface.
//! * **daemon-panic** — no `.unwrap()` / `.expect()` / `panic!` /
//!   `unreachable!` (or `todo!` / `unimplemented!`) in long-lived
//!   daemon paths.
//! * **clock-discipline** — `Instant::now` / `SystemTime::now` only
//!   inside `crates/obs` or at annotated timeout sites.
//! * **frame-registry** — every protocol frame literal appears in the
//!   central registry ([`frames::FRAMES`]), which is itself statically
//!   verified well-formed, discriminable, and pairwise prefix-free.
//! * **nested-lock** — no lock acquired while another guard from the
//!   same function body is live (unclassed guards; classed pairs
//!   belong to `lock-order`).
//! * **lock-order** — the global lock-order graph over the workspace
//!   lock classes must be acyclic, with lock summaries propagated
//!   along call edges so a guard held across a call into a function
//!   that locks elsewhere is found across files.
//! * **chunk-size-discipline** — only the `CHUNK_TRIALS` constant may
//!   reach a `chunk_cover` chunking site.
//! * **axis-exhaustiveness** — every `Vec` axis of `struct Sweep` is
//!   handled in every axis handler fn.
//!
//! Rules are deny-by-default. The only escape is an in-place pragma
//! in a plain line comment — `check:allow(rule) reason` — whose
//! reason is mandatory and whose presence must be justified: a pragma
//! that matches no finding is itself a finding. Run it as
//! `chipletqc-engine check [--format text|json]`; `check --fix`
//! inserts `TODO(triage)` pragma scaffolds for the findings that
//! support it ([`fix`]), and `--fix --dry-run` prints the patch
//! without writing.

pub mod fix;
pub mod frames;
mod graph;
pub mod lexer;
mod rules;
pub mod symbols;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::RULES;
pub use symbols::SymbolIndex;

/// One source file handed to the engine: a workspace-relative,
/// `/`-separated path (scoping is path-based) plus its text.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub path: String,
    pub text: String,
}

/// An unallowlisted rule violation. `rule` is one of [`RULES`] or
/// `"pragma"` for defects in the pragmas themselves.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub message: String,
    /// Whether `check --fix` can scaffold an allow pragma for this
    /// finding. False for pragma defects and registry-level
    /// `frame-registry` findings, which no pragma can suppress.
    pub fix_available: bool,
}

/// A violation suppressed by a `check:allow` pragma, kept in the
/// report so the allowlist stays auditable.
#[derive(Debug, Clone)]
pub struct Allowed {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub reason: String,
}

/// The outcome of one check run. Deterministically ordered: findings
/// and allows are sorted by (path, line, rule).
#[derive(Debug)]
pub struct CheckReport {
    pub findings: Vec<Finding>,
    pub allowed: Vec<Allowed>,
    pub files_scanned: usize,
}

impl CheckReport {
    /// Deny-by-default: clean means zero unallowlisted findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering: one `path:line: [rule] message` per
    /// finding, the allowlist, and a summary line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        for a in &self.allowed {
            let _ = writeln!(out, "allowed {}:{}: [{}] {}", a.path, a.line, a.rule, a.reason);
        }
        if !self.allowed.is_empty() {
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{} files scanned, {} finding(s), {} allowlisted",
            self.files_scanned,
            self.findings.len(),
            self.allowed.len()
        );
        out
    }

    /// Machine-readable rendering. Schema 2 is pinned by a
    /// golden-shape test: top-level `schema` / `files_scanned` /
    /// `clean` / `findings` / `allowed`; findings carry `rule` /
    /// `file` / `line` / `message` / `fix_available`, allows carry
    /// `rule` / `file` / `line` / `reason`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 2,\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \
                 \"fix_available\": {}}}",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                json_str(&f.message),
                f.fix_available
            );
        }
        out.push_str(if self.findings.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"allowed\": [");
        for (i, a) in self.allowed.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(a.rule),
                json_str(&a.path),
                a.line,
                json_str(&a.reason)
            );
        }
        out.push_str(if self.allowed.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs every rule over an explicit file set. Scoping is path-based,
/// so fixture tests exercise a rule by handing it content under an
/// in-scope pseudo-path.
pub fn check_files(files: &[SourceFile]) -> CheckReport {
    rules::analyze(files)
}

/// Pass 1 alone: the workspace symbol index for `files`. Callers that
/// want per-pass timing build the index themselves and hand it to
/// [`check_files_indexed`].
pub fn build_index(files: &[SourceFile]) -> SymbolIndex {
    SymbolIndex::build(files)
}

/// Pass 2 alone: every rule over a prebuilt index.
pub fn check_files_indexed(files: &[SourceFile], index: &SymbolIndex) -> CheckReport {
    rules::analyze_indexed(files, index)
}

/// Reads `crates/*/src/**/*.rs` under the workspace root (vendored
/// stand-ins and build output are out of scope), sorted by path.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Loads the workspace and runs every rule.
pub fn check_workspace(root: &Path) -> io::Result<CheckReport> {
    Ok(check_files(&load_workspace(root)?))
}

fn collect_rs(dir: &Path, root: &Path, files: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile { path: rel, text: fs::read_to_string(&path)? });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, text: &str) -> SourceFile {
        SourceFile { path: path.to_string(), text: text.to_string() }
    }

    #[test]
    fn json_escapes_are_valid() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn clean_file_reports_clean() {
        let report = check_files(&[file(
            "crates/core/src/lab.rs",
            "use std::collections::BTreeMap;\nfn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n",
        )]);
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn pragma_suppresses_and_records() {
        let report = check_files(&[file(
            "crates/core/src/lab.rs",
            "// check:allow(unordered-iteration) keyed access only, never iterated\n\
             use std::collections::HashMap;\n",
        )]);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.allowed.len(), 1);
        assert_eq!(report.allowed[0].rule, "unordered-iteration");
        assert!(report.allowed[0].reason.contains("keyed access"));
    }

    #[test]
    fn pragma_without_reason_is_a_finding() {
        let report = check_files(&[file(
            "crates/core/src/lab.rs",
            "// check:allow(unordered-iteration)\nuse std::collections::HashMap;\n",
        )]);
        // The reasonless pragma is rejected, so the HashMap finding
        // survives alongside the pragma defect.
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings.iter().any(|f| f.rule == "pragma"));
        assert!(report.findings.iter().any(|f| f.rule == "unordered-iteration"));
    }

    #[test]
    fn unused_pragma_is_a_finding() {
        let report = check_files(&[file(
            "crates/core/src/lab.rs",
            "// check:allow(unordered-iteration) nothing here needs this\nfn f() {}\n",
        )]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "pragma");
        assert!(report.findings[0].message.contains("matched no finding"));
    }

    #[test]
    fn unknown_rule_pragma_is_a_finding() {
        let report = check_files(&[file(
            "crates/core/src/lab.rs",
            "// check:allow(no-such-rule) whatever\nfn f() {}\n",
        )]);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn suffix_pragma_covers_its_own_line() {
        let report = check_files(&[file(
            "crates/store/src/lib.rs",
            "use std::collections::HashMap; // check:allow(unordered-iteration) keyed only\n",
        )]);
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn pragma_covers_a_multiline_statement() {
        let report = check_files(&[file(
            "crates/engine/src/service.rs",
            "fn f(x: Result<u8, u8>) -> u8 {\n\
                 // check:allow(daemon-panic) checked by caller\n\
                 x\n\
                     .expect(\"fine\")\n\
             }\n",
        )]);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.allowed.len(), 1);
    }

    #[test]
    fn doc_comments_are_not_pragmas() {
        let report = check_files(&[file(
            "crates/core/src/lab.rs",
            "/// check:allow(unordered-iteration) docs describing the syntax\n\
             fn f() {}\n",
        )]);
        // Neither a pragma (doc comment) nor an unused-pragma finding.
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn output_is_deterministic_and_sorted() {
        let files = [
            file("crates/core/src/b.rs", "use std::collections::HashMap;\n"),
            file("crates/core/src/a.rs", "use std::collections::HashSet;\n"),
        ];
        let report = check_files(&files);
        let paths: Vec<&str> = report.findings.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(paths, ["crates/core/src/a.rs", "crates/core/src/b.rs"]);
        let again = check_files(&files);
        assert_eq!(report.to_json(), again.to_json());
    }
}
