//! The central frame registry: every wire-protocol frame the engine
//! service (`crates/engine/src/protocol.rs`) and the store peer
//! protocol (`crates/store/src/remote.rs`) may emit or accept, as
//! data. The `frame-registry` rule cross-checks this table against
//! the sources in both directions (no unregistered frame literal, no
//! stale registry row) and re-proves the corpus properties that
//! `crates/engine/tests/protocol_properties.rs` pins dynamically:
//! pairwise prefix-freedom of rendered frame heads and same-verb
//! shape discriminability.

/// One frame shape. Frames sharing a verb (the `ok` replies, the two
/// `progress` forms) are discriminated by which headers are present,
/// so `headers` lists the headers a reader needs to tell this shape
/// from its verb-mates; `optional` lists headers that may also appear
/// but carry no discriminating weight.
#[derive(Debug, Clone, Copy)]
pub struct FrameSpec {
    pub verb: &'static str,
    pub headers: &'static [&'static str],
    pub optional: &'static [&'static str],
    pub doc: &'static str,
}

/// The full frame corpus, requests then replies, engine protocol then
/// store peer protocol. Adding a frame to the system means adding a
/// row here first — the checker fails otherwise.
pub const FRAMES: &[FrameSpec] = &[
    // Engine service requests.
    FrameSpec {
        verb: "hello",
        headers: &["token-bytes"],
        optional: &[],
        doc: "TCP authentication preamble carrying the shared token",
    },
    FrameSpec {
        verb: "submit",
        headers: &[],
        optional: &["workers", "shards", "seed", "scale", "only", "reset", "sweep-bytes"],
        doc: "run a batch: figure suite or an attached sweep",
    },
    FrameSpec {
        verb: "work-claim",
        headers: &[],
        optional: &["workers", "shards", "seed", "scale", "only", "reset", "sweep-bytes"],
        doc: "mesh worker unit: like submit but returns rendered pieces",
    },
    FrameSpec {
        verb: "cancel",
        headers: &[],
        optional: &[],
        doc: "retire the connection's inflight or queued batch",
    },
    FrameSpec {
        verb: "status",
        headers: &[],
        optional: &[],
        doc: "admission load + telemetry registry snapshot, off the batch path",
    },
    FrameSpec {
        verb: "shutdown",
        headers: &[],
        optional: &[],
        doc: "graceful drain: finish admitted batches, then exit",
    },
    // Engine service replies.
    FrameSpec {
        verb: "ok",
        headers: &["batch", "timing-bytes", "report-bytes"],
        optional: &[],
        doc: "completed batch: timing summary + run report payloads",
    },
    FrameSpec {
        verb: "ok",
        headers: &["pieces-bytes"],
        optional: &[],
        doc: "completed work-claim: rendered piece payloads",
    },
    FrameSpec {
        verb: "ok",
        headers: &["shutdown"],
        optional: &[],
        doc: "shutdown acknowledged",
    },
    FrameSpec {
        verb: "ok",
        headers: &["cancelled"],
        optional: &[],
        doc: "cancel acknowledged",
    },
    FrameSpec {
        verb: "ok",
        headers: &["status-bytes"],
        optional: &[],
        doc: "status snapshot JSON payload",
    },
    FrameSpec {
        verb: "progress",
        headers: &["queued"],
        optional: &[],
        doc: "queue position refresh while waiting for admission",
    },
    FrameSpec {
        verb: "progress",
        headers: &["done", "total"],
        optional: &[],
        doc: "task completion stream for an admitted batch",
    },
    FrameSpec {
        verb: "busy",
        headers: &["inflight", "queued"],
        optional: &[],
        doc: "admission refused: slots and queue full",
    },
    FrameSpec {
        verb: "error",
        headers: &["message-bytes"],
        optional: &[],
        doc: "request failed; human-readable message payload",
    },
    // Store peer protocol (requests beyond the shared hello).
    FrameSpec {
        verb: "store-get",
        headers: &["key-bytes"],
        optional: &[],
        doc: "fetch one logical key from the peer store",
    },
    FrameSpec {
        verb: "store-put",
        headers: &["encoding", "key-bytes", "payload-bytes"],
        optional: &[],
        doc: "write-behind replication of one entry to the peer",
    },
    FrameSpec {
        verb: "store-list",
        headers: &[],
        optional: &[],
        doc: "enumerate the peer's logical keys (prefetch driver)",
    },
    // Store peer replies.
    FrameSpec {
        verb: "found",
        headers: &["encoding", "payload-bytes"],
        optional: &[],
        doc: "store-get hit: envelope payload follows",
    },
    FrameSpec { verb: "missing", headers: &[], optional: &[], doc: "store-get miss" },
    FrameSpec { verb: "stored", headers: &[], optional: &[], doc: "store-put acknowledged" },
    FrameSpec {
        verb: "keys",
        headers: &["keys-bytes"],
        optional: &[],
        doc: "store-list reply: newline-joined logical keys payload",
    },
];

/// The protocol version prefix every frame head starts with. Must
/// match `chipletqc_store::wire::VERSION`; the frame-registry rule
/// verifies that against the source of `wire.rs`.
pub const VERSION: &str = "chipletqc/1";

/// Renders the minimal head bytes of a frame shape, the way both
/// writers do: version line, one `key = value` line per required
/// header, blank separator.
pub fn render_head(spec: &FrameSpec) -> String {
    let mut head = format!("{VERSION} {}\n", spec.verb);
    for h in spec.headers {
        head.push_str(h);
        head.push_str(" = 0\n");
    }
    head.push('\n');
    head
}

/// Structural problems with the registry itself (or the corpus it
/// describes). Returns human-readable defect descriptions; empty
/// means the corpus is well-formed and pairwise prefix-free.
pub fn corpus_defects() -> Vec<String> {
    let mut defects = Vec::new();

    for spec in FRAMES {
        if spec.verb.is_empty() {
            defects.push("registry has a frame with an empty verb".to_string());
            continue;
        }
        if !spec.verb.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
        {
            defects.push(format!(
                "frame verb `{}` must be lowercase ASCII with `-` separators",
                spec.verb
            ));
        }
        for h in spec.headers.iter().chain(spec.optional) {
            if h.is_empty() || !h.bytes().all(|b| b.is_ascii_lowercase() || b == b'-') {
                defects.push(format!("frame `{}`: malformed header name `{h}`", spec.verb));
            }
        }
    }

    // No duplicate shapes: same verb + same required-header set twice
    // would make the registry ambiguous about which frame was meant.
    for (i, a) in FRAMES.iter().enumerate() {
        for b in &FRAMES[i + 1..] {
            if a.verb == b.verb && a.headers == b.headers {
                defects.push(format!(
                    "duplicate frame shape: verb `{}` with headers {:?} registered twice",
                    a.verb, a.headers
                ));
            }
        }
    }

    // Same-verb discriminability: a reader keys on header presence,
    // so within one verb no shape's required headers may be a subset
    // of another's — the subset shape would also match the superset's
    // frames.
    for (i, a) in FRAMES.iter().enumerate() {
        for b in &FRAMES[i + 1..] {
            if a.verb != b.verb || a.headers == b.headers {
                continue;
            }
            let a_sub_b = a.headers.iter().all(|h| b.headers.contains(h));
            let b_sub_a = b.headers.iter().all(|h| a.headers.contains(h));
            if a_sub_b || b_sub_a {
                defects.push(format!(
                    "verb `{}`: header sets {:?} and {:?} are not discriminable \
                     (one is a subset of the other)",
                    a.verb, a.headers, b.headers
                ));
            }
        }
    }

    // Pairwise prefix-freedom of the rendered heads: no complete
    // frame head may be a strict prefix of another, so a reader that
    // stops at the blank line can never consume half of a longer
    // frame believing it read a shorter one.
    let heads: Vec<(usize, String)> =
        FRAMES.iter().enumerate().map(|(i, s)| (i, render_head(s))).collect();
    for (i, a) in &heads {
        for (j, b) in &heads {
            if i != j && b.starts_with(a.as_str()) {
                defects.push(format!(
                    "frame head for `{}` {:?} is a prefix of `{}` {:?}",
                    FRAMES[*i].verb, FRAMES[*i].headers, FRAMES[*j].verb, FRAMES[*j].headers
                ));
            }
        }
    }

    defects
}

/// True when `verb` names at least one registered frame shape.
pub fn is_registered(verb: &str) -> bool {
    FRAMES.iter().any(|s| s.verb == verb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_corpus_is_clean() {
        let defects = corpus_defects();
        assert!(defects.is_empty(), "corpus defects: {defects:?}");
    }

    #[test]
    fn subset_shapes_are_rejected() {
        // A hypothetical `ok` with only `batch` would be a subset of
        // the report reply's {batch, timing-bytes, report-bytes} —
        // exactly the defect the rule exists to catch. Simulate by
        // checking the defect text machinery on a crafted pair.
        let a = FrameSpec { verb: "ok", headers: &["batch"], optional: &[], doc: "" };
        let head_a = render_head(&a);
        let report =
            FRAMES.iter().find(|s| s.verb == "ok" && s.headers.contains(&"batch")).unwrap();
        let head_b = render_head(report);
        // The rendered subset head is NOT a byte prefix (header lines
        // differ), but presence-based reading is still ambiguous —
        // which is why corpus_defects checks subsets explicitly
        // rather than relying on the byte-prefix test alone.
        assert!(!head_b.starts_with(&head_a));
        assert!(a.headers.iter().all(|h| report.headers.contains(h)));
    }
}
