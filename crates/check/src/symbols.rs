//! Pass 1 of the two-pass analyzer: a whole-workspace symbol index
//! built from the lexer output. Pass 2 (the graph rules in
//! [`crate::graph`]) never re-tokenizes — everything interprocedural
//! reads from here.
//!
//! The index records, per file:
//!
//! * **fn definitions** — name plus the token span of the item, so a
//!   site can be attributed to its innermost enclosing function;
//! * **lock-acquisition sites** — every `.lock()`/`.read()`/`.write()`
//!   with empty parens, tagged with its *lock class* (the
//!   [`LOCK_CLASSES`] table keys on file + receiver identifier) and
//!   with the guards still live at the acquisition, using the same
//!   liveness model the per-file `nested-lock` rule always used:
//!   let-bound guards live to the end of their block or an explicit
//!   `drop(name)`, temporaries die at the statement's `;`;
//! * **call sites** — calls resolved *by name* to workspace fn
//!   definitions, tagged with the classed guards held at the call.
//!   Resolution is deliberately conservative: method calls resolve
//!   within the defining file only, free calls within the file then
//!   the crate, and path calls through a `crate::`/`Self::`/crate-lib
//!   or module-file qualifier. Unresolvable calls produce no edges
//!   (under-approximation, never false cycles);
//! * **sweep axis fields** — the `Vec` fields of `struct Sweep` in
//!   `crates/engine/src/sweep.rs`, for the axis-exhaustiveness rule.

use std::collections::BTreeMap;

use crate::lexer::{self, Lexed, Token, TokenKind};
use crate::SourceFile;

/// The workspace lock-class table: (file, receiver identifier,
/// class). A `.lock()`/`.read()`/`.write()` whose receiver identifier
/// matches a row is an acquisition of that class; everything else is
/// unclassed and stays in per-fn `nested-lock` territory. Classes are
/// per-file because receiver names repeat (`state` is the scheduler's
/// pool state in scheduler.rs and the admission queue in service.rs).
pub const LOCK_CLASSES: &[(&str, &str, &str)] = &[
    ("crates/engine/src/scheduler.rs", "state", "pool-state"),
    ("crates/engine/src/scheduler.rs", "sched", "batch-sched"),
    ("crates/engine/src/service.rs", "state", "admission-state"),
    ("crates/engine/src/service.rs", "reset_gate", "reset-gate"),
    ("crates/engine/src/mesh.rs", "state", "mesh-state"),
    ("crates/store/src/remote.rs", "conn", "peer-conn"),
    ("crates/store/src/remote.rs", "circuit", "peer-circuit"),
    ("crates/store/src/lib.rs", "writers", "store-writers"),
    ("crates/store/src/lib.rs", "ranged_memo", "store-memo"),
    ("crates/core/src/lab.rs", "inner", "hub-inner"),
    ("crates/core/src/lab.rs", "retired", "hub-retired"),
    ("crates/core/src/lab.rs", "map", "hub-slot"),
    ("crates/obs/src/lib.rs", "counters", "obs-registry"),
    ("crates/obs/src/lib.rs", "gauges", "obs-registry"),
    ("crates/obs/src/lib.rs", "histograms", "obs-registry"),
    ("crates/obs/src/lib.rs", "trace_sink", "obs-trace"),
];

/// The file whose `struct Sweep` `Vec` fields are the sweep axes.
pub const SWEEP_FILE: &str = "crates/engine/src/sweep.rs";

/// The class of a lock acquisition, by file and receiver identifier.
pub fn lock_class(path: &str, receiver: &str) -> Option<&'static str> {
    LOCK_CLASSES
        .iter()
        .find(|(p, r, _)| *p == path && *r == receiver)
        .map(|(_, _, class)| *class)
}

/// Method names never resolved to workspace definitions. Condvar
/// protocol methods (`wait` takes and returns the guard — reentrancy
/// is the whole point) must not read as "a call that locks", and the
/// std container/iterator/atomic vocabulary below shadows any
/// same-named workspace fn at nearly every call site, so resolving it
/// by bare name would manufacture edges that do not exist.
const METHOD_STOPLIST: &[&str] = &[
    "wait",
    "wait_timeout",
    "wait_while",
    "notify_all",
    "notify_one",
    "clone",
    "drop",
    "lock",
    "read",
    "write",
    "try_lock",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "take",
    "into_inner",
    "as_ref",
    "as_mut",
    "len",
    "is_empty",
    "push",
    "pop",
    "push_back",
    "pop_front",
    "insert",
    "remove",
    "retain",
    "clear",
    "position",
    "contains",
    "contains_key",
    "get",
    "get_mut",
    "entry",
    "iter",
    "iter_mut",
    "into_iter",
    "map",
    "and_then",
    "filter",
    "collect",
    "extend",
    "join",
    "load",
    "store",
    "swap",
    "fetch_add",
    "elapsed",
];

/// Keywords (and the ubiquitous enum constructors) that look like
/// `name(` but are never calls into a workspace fn.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "else", "in", "as", "move",
    "ref", "mut", "unsafe", "Some", "None", "Ok", "Err",
];

/// One `fn` item: where it is and which token span it covers
/// (signature through body close), so sites attribute to their
/// innermost enclosing definition.
#[derive(Debug)]
pub struct FnDef {
    pub file: usize,
    pub name: String,
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// One past the body's closing `}` (or the declaration's `;`).
    pub end: usize,
}

/// A classed guard live at a site.
#[derive(Debug, Clone)]
pub struct HeldLock {
    pub class: &'static str,
    /// Line the held guard was acquired on.
    pub line: usize,
}

/// The first live guard at a site, classed or not — what the per-fn
/// `nested-lock` rule reports against.
#[derive(Debug, Clone)]
pub struct HeldGuard {
    pub name: Option<String>,
    pub line: usize,
    pub class: Option<&'static str>,
}

/// One `.lock()`/`.read()`/`.write()` acquisition (stdio excluded).
#[derive(Debug)]
pub struct LockSite {
    pub file: usize,
    pub line: usize,
    /// `lock`, `read`, or `write`.
    pub method: String,
    pub class: Option<&'static str>,
    /// Classed guards live at this acquisition (deduped by class).
    pub held_classes: Vec<HeldLock>,
    /// The first live guard of any kind, for `nested-lock`.
    pub held_first: Option<HeldGuard>,
    /// Innermost enclosing fn, as an index into [`SymbolIndex::fns`].
    pub caller: Option<usize>,
}

/// One call resolved (possibly to several same-named candidates) into
/// the workspace.
#[derive(Debug)]
pub struct CallSite {
    pub file: usize,
    pub line: usize,
    pub name: String,
    /// Candidate definitions, as indices into [`SymbolIndex::fns`].
    pub callees: Vec<usize>,
    /// Classed guards live at the call (deduped by class).
    pub held: Vec<HeldLock>,
    pub caller: Option<usize>,
}

/// A `Vec` field of `struct Sweep` in [`SWEEP_FILE`].
#[derive(Debug)]
pub struct AxisField {
    pub file: usize,
    pub name: String,
    pub line: usize,
}

/// The owned pass-1 output: lexed views (aligned with the input file
/// slice) plus every extracted symbol, in deterministic file/token
/// order.
pub struct SymbolIndex {
    pub lexed: Vec<Lexed>,
    pub fns: Vec<FnDef>,
    pub lock_sites: Vec<LockSite>,
    pub call_sites: Vec<CallSite>,
    pub axis_fields: Vec<AxisField>,
}

impl SymbolIndex {
    pub fn build(files: &[SourceFile]) -> SymbolIndex {
        let lexed: Vec<Lexed> = files.iter().map(|f| lexer::lex(&f.text)).collect();

        let mut fns: Vec<FnDef> = Vec::new();
        for (fi, lex) in lexed.iter().enumerate() {
            collect_fns(fi, &lex.tokens, &mut fns);
        }

        let resolver = Resolver::new(files, &fns);
        let mut lock_sites = Vec::new();
        let mut call_sites = Vec::new();
        let mut axis_fields = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            let lex = &lexed[fi];
            let mut sites = FileSites::default();
            scan_sites(fi, &file.path, &lex.tokens, &fns, &resolver, &mut sites);
            lock_sites.extend(sites.locks);
            call_sites.extend(sites.calls);
            if file.path == SWEEP_FILE {
                collect_axis_fields(fi, &lex.tokens, &mut axis_fields);
            }
        }
        SymbolIndex { lexed, fns, lock_sites, call_sites, axis_fields }
    }

    /// All fn ids in `file` named `name`.
    pub fn fns_named(&self, file: usize, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, d)| d.file == file && d.name == name)
            .map(|(id, _)| id)
            .collect()
    }
}

/// The receiver identifier of a `.lock()`-shaped acquisition or a
/// method call at token `i` (the method name; `t[i-1]` is the `.`):
/// the identifier before the dot, looking through one balanced call
/// suffix so `trace_sink().lock()` resolves to `trace_sink`.
pub fn receiver_of(t: &[Token], i: usize) -> Option<String> {
    if i < 2 {
        return None;
    }
    let j = i - 2;
    let prev = &t[j];
    if prev.kind == TokenKind::Ident {
        return Some(prev.text.clone());
    }
    if prev.is_punct(')') {
        let mut depth = 0i64;
        let mut k = j;
        loop {
            if t[k].is_punct(')') {
                depth += 1;
            } else if t[k].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
        if k > 0 && t[k - 1].kind == TokenKind::Ident {
            return Some(t[k - 1].text.clone());
        }
    }
    None
}

fn collect_fns(fi: usize, t: &[Token], out: &mut Vec<FnDef>) {
    for i in 0..t.len() {
        if !t[i].is_ident("fn") {
            continue;
        }
        let Some(name) = t.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else { continue };
        // Find the body: the first `{` (or declaration `;`) at paren
        // depth zero after the signature, then its matching `}`.
        let mut j = i + 2;
        let mut paren = 0i64;
        let end = loop {
            match t.get(j) {
                None => break j,
                Some(tok) if tok.is_punct('(') || tok.is_punct('[') => paren += 1,
                Some(tok) if tok.is_punct(')') || tok.is_punct(']') => paren -= 1,
                Some(tok) if paren == 0 && tok.is_punct(';') => break j + 1,
                Some(tok) if paren == 0 && tok.is_punct('{') => {
                    let mut depth = 0i64;
                    let mut k = j;
                    break loop {
                        match t.get(k) {
                            None => break k,
                            Some(tok) if tok.is_punct('{') => depth += 1,
                            Some(tok) if tok.is_punct('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    break k + 1;
                                }
                            }
                            Some(_) => {}
                        }
                        k += 1;
                    };
                }
                Some(_) => {}
            }
            j += 1;
        };
        out.push(FnDef { file: fi, name: name.text.clone(), line: t[i].line, start: i, end });
    }
}

/// Innermost fn containing token `i` of file `fi`: the definition
/// with the largest `start` among those whose span covers `i`.
fn innermost_fn(fns: &[FnDef], fi: usize, i: usize) -> Option<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, d)| d.file == fi && d.start <= i && i < d.end)
        .max_by_key(|(_, d)| d.start)
        .map(|(id, _)| id)
}

/// Name-resolution maps, built once over every fn definition.
struct Resolver<'a> {
    files: &'a [SourceFile],
    /// name -> fn ids, per file.
    by_file: BTreeMap<(usize, &'a str), Vec<usize>>,
    /// name -> fn ids, per crate directory.
    by_crate: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    /// crate lib name (`chipletqc_obs`) -> crate directory (`obs`).
    lib_names: BTreeMap<String, &'a str>,
    /// module file stem -> files having it; resolution uses the
    /// caller's crate first, any crate when unique.
    module_stems: BTreeMap<&'a str, Vec<usize>>,
}

/// The crate directory of a workspace path (`crates/<dir>/src/…`).
fn crate_dir(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

fn file_stem(path: &str) -> Option<&str> {
    path.rsplit('/').next()?.strip_suffix(".rs")
}

impl<'a> Resolver<'a> {
    fn new(files: &'a [SourceFile], fns: &'a [FnDef]) -> Resolver<'a> {
        let mut by_file: BTreeMap<(usize, &str), Vec<usize>> = BTreeMap::new();
        let mut by_crate: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, def) in fns.iter().enumerate() {
            by_file.entry((def.file, def.name.as_str())).or_default().push(id);
            if let Some(dir) = crate_dir(&files[def.file].path) {
                by_crate.entry((dir, def.name.as_str())).or_default().push(id);
            }
        }
        let mut lib_names = BTreeMap::new();
        let mut module_stems: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            if let Some(dir) = crate_dir(&file.path) {
                lib_names.insert(format!("chipletqc_{dir}"), dir);
            }
            if let Some(stem) = file_stem(&file.path) {
                module_stems.entry(stem).or_default().push(fi);
            }
        }
        Resolver { files, by_file, by_crate, lib_names, module_stems }
    }

    fn in_file(&self, file: usize, name: &str) -> Vec<usize> {
        self.by_file.get(&(file, name)).cloned().unwrap_or_default()
    }

    fn in_crate(&self, dir: &str, name: &str) -> Vec<usize> {
        self.by_crate.get(&(dir, name)).cloned().unwrap_or_default()
    }

    /// A free call: same file, else same crate.
    fn free(&self, file: usize, name: &str) -> Vec<usize> {
        let local = self.in_file(file, name);
        if !local.is_empty() {
            return local;
        }
        match crate_dir(&self.files[file].path) {
            Some(dir) => self.in_crate(dir, name),
            None => Vec::new(),
        }
    }

    /// A path call, by its innermost qualifier (`qual::name(…)`).
    fn path(&self, file: usize, qual: &str, name: &str) -> Vec<usize> {
        if qual == "self" || qual == "Self" {
            return self.in_file(file, name);
        }
        let caller_crate = crate_dir(&self.files[file].path);
        if qual == "crate" {
            return caller_crate.map(|d| self.in_crate(d, name)).unwrap_or_default();
        }
        if let Some(dir) = self.lib_names.get(qual) {
            return self.in_crate(dir, name);
        }
        if let Some(candidates) = self.module_stems.get(qual) {
            let in_caller_crate: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|fi| crate_dir(&self.files[*fi].path) == caller_crate)
                .collect();
            let targets =
                if !in_caller_crate.is_empty() { in_caller_crate } else { candidates.clone() };
            if targets.len() == 1 {
                return self.in_file(targets[0], name);
            }
        }
        // A capitalized qualifier is a type (`Store::open`); without
        // type resolution the best sound guess is the caller's crate.
        if qual.starts_with(char::is_uppercase) {
            return caller_crate.map(|d| self.in_crate(d, name)).unwrap_or_default();
        }
        Vec::new()
    }
}

#[derive(Default)]
struct FileSites {
    locks: Vec<LockSite>,
    calls: Vec<CallSite>,
}

/// The guard-liveness walk: the `nested-lock` model, now recording
/// classed held-sets at every acquisition and resolved call.
fn scan_sites(
    fi: usize,
    path: &str,
    t: &[Token],
    fns: &[FnDef],
    resolver: &Resolver<'_>,
    out: &mut FileSites,
) {
    struct Guard {
        name: Option<String>,
        depth: i64,
        temp: bool,
        line: usize,
        class: Option<&'static str>,
    }
    struct FnFrame {
        depth_at_entry: i64,
        guards: Vec<Guard>,
    }

    fn held_classes(guards: &[Guard]) -> Vec<HeldLock> {
        let mut seen: BTreeMap<&'static str, usize> = BTreeMap::new();
        for g in guards {
            if let Some(class) = g.class {
                seen.entry(class).or_insert(g.line);
            }
        }
        seen.into_iter().map(|(class, line)| HeldLock { class, line }).collect()
    }

    let mut frames: Vec<FnFrame> = Vec::new();
    let mut depth = 0i64;
    let mut pending_fn = false;
    let mut stmt_start = 0usize;

    for i in 0..t.len() {
        let token = &t[i];
        if token.kind == TokenKind::Punct {
            match token.text.as_str() {
                "{" => {
                    depth += 1;
                    if pending_fn {
                        frames.push(FnFrame { depth_at_entry: depth, guards: Vec::new() });
                        pending_fn = false;
                    }
                    stmt_start = i + 1;
                }
                "}" => {
                    depth -= 1;
                    if let Some(frame) = frames.last_mut() {
                        frame.guards.retain(|g| g.depth <= depth);
                    }
                    while frames.last().is_some_and(|f| depth < f.depth_at_entry) {
                        frames.pop();
                    }
                    stmt_start = i + 1;
                }
                ";" => {
                    if let Some(frame) = frames.last_mut() {
                        frame.guards.retain(|g| !(g.temp && g.depth >= depth));
                    }
                    stmt_start = i + 1;
                }
                _ => {}
            }
            continue;
        }
        if token.is_ident("fn") {
            pending_fn = true;
            continue;
        }
        // `drop(name)` releases a named guard early.
        if token.is_ident("drop")
            && t.get(i + 1).is_some_and(|a| a.is_punct('('))
            && t.get(i + 3).is_some_and(|b| b.is_punct(')'))
        {
            if let Some(name) = t.get(i + 2).filter(|n| n.kind == TokenKind::Ident) {
                if let Some(frame) = frames.last_mut() {
                    if let Some(pos) =
                        frame.guards.iter().rposition(|g| g.name.as_deref() == Some(&name.text))
                    {
                        frame.guards.remove(pos);
                    }
                }
            }
            continue;
        }
        // A guard acquisition: `.lock()` / `.read()` / `.write()`
        // with empty parens (argument-taking io::Read::read etc.
        // never match).
        let acquires = token.kind == TokenKind::Ident
            && matches!(token.text.as_str(), "lock" | "read" | "write")
            && i > 0
            && t[i - 1].is_punct('.')
            && t.get(i + 1).is_some_and(|a| a.is_punct('('))
            && t.get(i + 2).is_some_and(|b| b.is_punct(')'));
        if acquires {
            // Stdio handles use a reentrant mutex; `stdout().lock()`
            // (or `.lock()` on a binding conventionally named after
            // the handle) cannot participate in lock-order inversion.
            let stdio = (i >= 4
                && t[i - 2].is_punct(')')
                && t[i - 3].is_punct('(')
                && matches!(t[i - 4].text.as_str(), "stdout" | "stderr" | "stdin"))
                || (i >= 2
                    && t[i - 2].kind == TokenKind::Ident
                    && matches!(t[i - 2].text.as_str(), "stdout" | "stderr" | "stdin"));
            if stdio {
                continue;
            }
            let Some(frame) = frames.last_mut() else { continue };
            let class = receiver_of(t, i).and_then(|r| lock_class(path, &r));
            out.locks.push(LockSite {
                file: fi,
                line: token.line,
                method: token.text.clone(),
                class,
                held_classes: held_classes(&frame.guards),
                held_first: frame.guards.first().map(|g| HeldGuard {
                    name: g.name.clone(),
                    line: g.line,
                    class: g.class,
                }),
                caller: innermost_fn(fns, fi, i),
            });
            // The binding is the guard only when the chain ends at
            // the acquisition (plus unwrap/expect adapters): in
            // `let v = m.lock().unwrap().get(k).cloned();` the guard
            // is a temporary that dies at the `;`, whatever `v` is
            // named.
            let name =
                let_binding_name(t, stmt_start, i).filter(|_| chain_yields_guard(t, i + 2));
            frame.guards.push(Guard {
                temp: name.is_none(),
                name,
                depth,
                line: token.line,
                class,
            });
            continue;
        }
        // A call site: `name(` that is not a definition, keyword, or
        // macro invocation.
        if token.kind == TokenKind::Ident
            && t.get(i + 1).is_some_and(|a| a.is_punct('('))
            && !NON_CALL_IDENTS.contains(&token.text.as_str())
            && !(i > 0 && t[i - 1].is_ident("fn"))
        {
            let Some(frame) = frames.last() else { continue };
            let callees = if i > 0 && t[i - 1].is_punct('.') {
                if METHOD_STOPLIST.contains(&token.text.as_str()) {
                    continue;
                }
                resolver.in_file(fi, &token.text)
            } else if i >= 2 && t[i - 1].is_punct(':') && t[i - 2].is_punct(':') {
                match t.get(i.wrapping_sub(3)).filter(|q| q.kind == TokenKind::Ident) {
                    Some(qual) => resolver.path(fi, &qual.text, &token.text),
                    None => Vec::new(),
                }
            } else {
                resolver.free(fi, &token.text)
            };
            if callees.is_empty() {
                continue;
            }
            out.calls.push(CallSite {
                file: fi,
                line: token.line,
                name: token.text.clone(),
                callees,
                held: held_classes(&frame.guards),
                caller: innermost_fn(fns, fi, i),
            });
        }
    }
}

/// Whether the method chain continuing after the acquisition's `)`
/// (at `close`) still evaluates to the guard when the statement ends:
/// only result adapters (`unwrap`, `expect`, `unwrap_or_else`) may
/// follow before the `;`. Any other continuation consumes the guard
/// as a temporary.
pub(crate) fn chain_yields_guard(t: &[Token], close: usize) -> bool {
    let mut j = close + 1;
    loop {
        match t.get(j) {
            Some(tok) if tok.is_punct(';') => return true,
            Some(tok) if tok.is_punct('.') => {
                let adapter = t.get(j + 1).is_some_and(|a| {
                    matches!(a.text.as_str(), "unwrap" | "expect" | "unwrap_or_else")
                });
                if !adapter || !t.get(j + 2).is_some_and(|p| p.is_punct('(')) {
                    return false;
                }
                // Skip the adapter's balanced argument list.
                let mut depth = 0i64;
                j += 2;
                loop {
                    match t.get(j) {
                        Some(tok) if tok.is_punct('(') => depth += 1,
                        Some(tok) if tok.is_punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => return false,
                    }
                    j += 1;
                }
                j += 1;
            }
            _ => return false,
        }
    }
}

/// If the statement starting at `stmt_start` is `let [mut] name = …`,
/// returns the bound name — the guard lives until its block closes.
/// Anything else (match scrutinees, field assignments, expression
/// statements) is treated as a temporary guard.
pub(crate) fn let_binding_name(
    t: &[Token],
    stmt_start: usize,
    before: usize,
) -> Option<String> {
    let mut j = stmt_start;
    if !t.get(j)?.is_ident("let") {
        return None;
    }
    j += 1;
    if t.get(j)?.is_ident("mut") {
        j += 1;
    }
    let name = t.get(j)?;
    if name.kind != TokenKind::Ident || j >= before {
        return None;
    }
    if !t.get(j + 1)?.is_punct('=') {
        return None;
    }
    // `let v = *m.lock()…;` copies the value out through the deref;
    // the guard itself is a temporary dying at the `;`.
    if t.get(j + 2)?.is_punct('*') {
        return None;
    }
    Some(name.text.clone())
}

/// The `Vec` fields of `struct Sweep`: scan the struct body at brace
/// depth one for `name: Vec<…>` (with an optional `pub`).
fn collect_axis_fields(fi: usize, t: &[Token], out: &mut Vec<AxisField>) {
    let Some(start) = (0..t.len()).find(|&i| {
        t[i].is_ident("struct") && t.get(i + 1).is_some_and(|n| n.is_ident("Sweep"))
    }) else {
        return;
    };
    let Some(open) = (start..t.len()).find(|&i| t[i].is_punct('{')) else { return };
    let mut depth = 0i64;
    let mut i = open;
    while i < t.len() {
        if t[i].is_punct('{') {
            depth += 1;
        } else if t[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1
            && t[i].kind == TokenKind::Ident
            && t[i].text != "pub"
            && t.get(i + 1).is_some_and(|c| c.is_punct(':'))
            && t.get(i + 2).is_some_and(|v| v.is_ident("Vec"))
        {
            out.push(AxisField { file: fi, name: t[i].text.clone(), line: t[i].line });
            // Skip to the end of the field (the `,` at depth 1).
            let mut angle = i + 2;
            let mut inner = 0i64;
            while angle < t.len() {
                if t[angle].is_punct('{') || t[angle].is_punct('(') || t[angle].is_punct('[') {
                    inner += 1;
                } else if t[angle].is_punct('}')
                    || t[angle].is_punct(')')
                    || t[angle].is_punct(']')
                {
                    inner -= 1;
                    if inner < 0 {
                        break;
                    }
                } else if inner == 0 && t[angle].is_punct(',') {
                    break;
                }
                angle += 1;
            }
            i = angle;
        }
        i += 1;
    }
}
