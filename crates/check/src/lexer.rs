//! A line/token-level Rust lexer — just enough structure for the rule
//! engine: identifiers, punctuation, string/char/number literals, and
//! comments, each tagged with a 1-based line number. Deliberately not
//! a parser; the rules work on token adjacency and brace depth.
//!
//! Two pieces of real work live here because every rule depends on
//! them being right:
//!
//! * **String and comment state.** A `HashMap` mentioned inside a
//!   string literal or a doc comment must not trip the
//!   unordered-iteration rule, so the lexer fully tracks `"…"` (with
//!   escapes), `r#"…"#` raw strings, byte strings, char literals
//!   vs. lifetimes, and nested `/* … */` block comments.
//! * **`#[cfg(test)]` regions.** Test modules and test-only items are
//!   exempt from every rule (tests may unwrap and may use wall
//!   clocks), so tokens under a `#[cfg(test)]` attribute — up to the
//!   close of the following braced item or terminating `;` — are
//!   dropped, along with comments on those lines.

/// What a token is; rules mostly switch on `Ident` vs `Str`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `lock`, …).
    Ident,
    /// A string literal; `text` holds the raw content between the
    /// quotes (escapes left as written).
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`); content in `text`.
    Char,
    /// A numeric literal.
    Num,
    /// A single punctuation character (`.`, `(`, `{`, `;`, …).
    Punct,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
}

impl Token {
    pub fn is(&self, kind: TokenKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }

    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }

    pub fn is_ident(&self, text: &str) -> bool {
        self.is(TokenKind::Ident, text)
    }
}

/// A comment with its 1-based line number. `text` excludes the
/// comment markers; `doc` is true for `///` / `//!` doc comments,
/// which are documentation and never carry `check:allow` pragmas.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: usize,
    pub doc: bool,
}

/// The lexed view of one source file, `#[cfg(test)]` regions removed.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

pub fn lex(source: &str) -> Lexed {
    let raw = lex_raw(source);
    strip_test_regions(raw)
}

fn lex_raw(source: &str) -> Lexed {
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let doc = matches!(chars.get(start), Some('/') | Some('!'));
                let mut end = start;
                while end < chars.len() && chars[end] != '\n' {
                    end += 1;
                }
                let mut text: String = chars[start..end].iter().collect();
                if doc {
                    text.remove(0);
                }
                comments.push(Comment { text: text.trim().to_string(), line, doc });
                i = end;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let doc = matches!(chars.get(i + 2), Some('*') | Some('!'))
                    && chars.get(i + 3) != Some(&'/');
                let mut depth = 1usize;
                let mut j = i + 2;
                let mut text = String::new();
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        if chars[j] == '\n' {
                            line += 1;
                        }
                        if depth == 1 {
                            text.push(chars[j]);
                        }
                        j += 1;
                    }
                }
                comments.push(Comment { text: text.trim().to_string(), line: start_line, doc });
                i = j;
            }
            '"' => {
                let (content, next_i, lines) = scan_string(&chars, i + 1);
                tokens.push(Token { kind: TokenKind::Str, text: content, line });
                line += lines;
                i = next_i;
            }
            'r' | 'b' if starts_raw_or_byte_string(&chars, i) => {
                let (content, next_i, lines, kind) = scan_prefixed_literal(&chars, i);
                tokens.push(Token { kind, text: content, line });
                line += lines;
                i = next_i;
            }
            '\'' => {
                if is_lifetime(&chars, i) {
                    // `'a`, `'static`, `'_` — consume the tick and the
                    // identifier; no token emitted.
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    let (content, next_i) = scan_char_literal(&chars, i + 1);
                    tokens.push(Token { kind: TokenKind::Char, text: content, line });
                    i = next_i;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token { kind: TokenKind::Ident, text, line });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    // `1.0` is one number; `1..2` and `x.0.lock()` are
                    // not — stop before a second dot or `..`.
                    if chars[i] == '.'
                        && (chars.get(i + 1) == Some(&'.')
                            || !chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
                    {
                        break;
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token { kind: TokenKind::Num, text, line });
            }
            c => {
                tokens.push(Token { kind: TokenKind::Punct, text: c.to_string(), line });
                i += 1;
            }
        }
    }

    Lexed { tokens, comments }
}

/// Scans a `"…"` body starting just past the opening quote. Returns
/// (content, index past the closing quote, newlines crossed).
fn scan_string(chars: &[char], mut i: usize) -> (String, usize, usize) {
    let mut content = String::new();
    let mut lines = 0usize;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                content.push(chars[i]);
                if let Some(&next) = chars.get(i + 1) {
                    content.push(next);
                    if next == '\n' {
                        lines += 1;
                    }
                }
                i += 2;
            }
            '"' => return (content, i + 1, lines),
            ch => {
                if ch == '\n' {
                    lines += 1;
                }
                content.push(ch);
                i += 1;
            }
        }
    }
    (content, i, lines)
}

/// True when position `i` (an `r` or `b`) begins `r"`, `r#"`, `b"`,
/// `br"`, `b'`, etc. — rather than a plain identifier.
fn starts_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    // Not a literal prefix if we are mid-identifier (`bar"x"` is the
    // ident `bar` then a string).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            return true; // byte char b'x'
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    chars.get(j) == Some(&'"')
}

/// Scans `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'x'` starting at
/// the prefix. Returns (content, next index, newlines, token kind).
fn scan_prefixed_literal(chars: &[char], mut i: usize) -> (String, usize, usize, TokenKind) {
    let mut raw = false;
    if chars[i] == 'b' {
        i += 1;
        if chars.get(i) == Some(&'\'') {
            let (content, next_i) = scan_char_literal(chars, i + 1);
            return (content, next_i, 0, TokenKind::Char);
        }
    }
    if chars.get(i) == Some(&'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(chars.get(i), Some(&'"'));
    i += 1;
    if !raw {
        let (content, next_i, lines) = scan_string(chars, i);
        return (content, next_i, lines, TokenKind::Str);
    }
    let mut content = String::new();
    let mut lines = 0usize;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return (content, i + 1 + hashes, lines, TokenKind::Str);
            }
        }
        if chars[i] == '\n' {
            lines += 1;
        }
        content.push(chars[i]);
        i += 1;
    }
    (content, i, lines, TokenKind::Str)
}

/// Scans a char/byte-char body starting just past the opening tick.
fn scan_char_literal(chars: &[char], mut i: usize) -> (String, usize) {
    let mut content = String::new();
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                content.push(chars[i]);
                if let Some(&next) = chars.get(i + 1) {
                    content.push(next);
                }
                i += 2;
            }
            '\'' => return (content, i + 1),
            ch => {
                content.push(ch);
                i += 1;
            }
        }
    }
    (content, i)
}

/// Distinguishes a lifetime tick from a char literal: `'a>` / `'a,` /
/// `'static` are lifetimes; `'a'` / `'\n'` are chars.
fn is_lifetime(chars: &[char], i: usize) -> bool {
    let Some(&first) = chars.get(i + 1) else { return false };
    if first == '\\' {
        return false;
    }
    if !(first.is_alphabetic() || first == '_') {
        return false;
    }
    let mut j = i + 2;
    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
        j += 1;
    }
    chars.get(j) != Some(&'\'')
}

/// Drops tokens covered by a `#[cfg(test)]` (or `#[cfg(all(test, …))]`
/// etc.) attribute: the attribute itself, any further attributes, and
/// the following item through its closing brace or `;`. Comments on
/// the removed lines are dropped too, so pragmas cannot hide in test
/// code.
fn strip_test_regions(lexed: Lexed) -> Lexed {
    let tokens = lexed.tokens;
    let mut keep = vec![true; tokens.len()];
    let mut test_lines: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(end) = test_region_end(&tokens, i) {
            let start_line = tokens[i].line;
            let end_line = tokens[end - 1].line;
            for flag in keep.iter_mut().take(end).skip(i) {
                *flag = false;
            }
            test_lines.push((start_line, end_line));
            i = end;
        } else {
            i += 1;
        }
    }
    let comments = lexed
        .comments
        .into_iter()
        .filter(|c| !test_lines.iter().any(|&(lo, hi)| c.line >= lo && c.line <= hi))
        .collect();
    let tokens = tokens.into_iter().zip(keep).filter_map(|(t, k)| k.then_some(t)).collect();
    Lexed { tokens, comments }
}

/// If tokens[i..] starts a `#[cfg(test)]`-guarded item, returns the
/// exclusive end index of the whole region; otherwise None.
fn test_region_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !(tokens.get(i)?.is_punct('#') && tokens.get(i + 1)?.is_punct('[')) {
        return None;
    }
    // Find the closing `]` of this attribute and check for a `test`
    // ident inside a `cfg(...)`.
    let mut depth = 1usize;
    let mut j = i + 2;
    let mut saw_cfg_test = false;
    let mut saw_not = false;
    let is_cfg = tokens.get(j).is_some_and(|t| t.is_ident("cfg"));
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
        } else if is_cfg && t.is_ident("test") {
            saw_cfg_test = true;
        } else if is_cfg && t.is_ident("not") {
            // `#[cfg(not(test))]` guards code that is compiled
            // *without* cfg(test) — the opposite of a test region.
            // Keep anything whose predicate involves negation.
            saw_not = true;
        }
        j += 1;
    }
    if saw_not {
        return None;
    }
    if !saw_cfg_test {
        return None;
    }
    // Skip any further attributes between the cfg and the item.
    while j < tokens.len()
        && tokens[j].is_punct('#')
        && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
    {
        let mut d = 1usize;
        let mut k = j + 2;
        while k < tokens.len() && d > 0 {
            if tokens[k].is_punct('[') {
                d += 1;
            } else if tokens[k].is_punct(']') {
                d -= 1;
            }
            k += 1;
        }
        j = k;
    }
    // Consume the item: through the first `;` at depth 0, or through
    // the matching `}` of the first `{`.
    let mut brace = 0usize;
    let mut entered = false;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('{') {
            brace += 1;
            entered = true;
        } else if t.is_punct('}') {
            brace = brace.saturating_sub(1);
            if entered && brace == 0 {
                return Some(j + 1);
            }
        } else if t.is_punct(';') && !entered {
            return Some(j + 1);
        }
        j += 1;
    }
    Some(j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_leak_idents() {
        let lexed = lex(r##"
            // HashMap in a comment
            /* HashMap in a block */
            let s = "HashMap in a string";
            let r = r#"HashMap raw"#;
            let c = 'H';
        "##);
        assert!(!lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "HashMap"));
        let strs: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'static str { x }");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("str")));
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Char));
    }

    #[test]
    fn cfg_test_regions_are_stripped() {
        let lexed = lex("fn live() { real(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn hidden() { secret.unwrap(); }\n\
             }\n\
             fn also_live() {}\n");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("live")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("also_live")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("hidden")));
    }

    #[test]
    fn cfg_all_test_counts_as_test() {
        let lexed = lex("#[cfg(all(test, unix))]\nfn gated() { x.unwrap(); }\nfn live() {}\n");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("live")));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let lexed = lex("let a = \"one\ntwo\";\nlet tail = 1;\n");
        let tail = lexed.tokens.iter().find(|t| t.is_ident("tail")).unwrap();
        assert_eq!(tail.line, 3);
    }
}
