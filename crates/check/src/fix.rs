//! `check --fix`: mechanical triage scaffolds. For every fixable
//! finding, insert a
//! `// check:allow(rule) TODO(triage): <finding summary>` pragma line
//! directly above the finding, matching its indentation, so rolling a
//! new rule over a large tree is one command followed by a review of
//! the `TODO(triage)` markers — each becomes either a real fix or a
//! real reason. Files are rewritten atomically (temp-then-rename in
//! the same directory, the store's discipline); `--dry-run` renders
//! the patch and writes nothing.
//!
//! Unfixable findings (`pragma` defects, registry-level
//! `frame-registry` findings) are counted and left alone: a scaffold
//! cannot suppress them, so inserting one would just add a second
//! finding.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::{CheckReport, SourceFile};

/// One pragma line to insert above `line` (1-based) of `path`.
#[derive(Debug)]
pub struct Insertion {
    pub path: String,
    pub line: usize,
    pub text: String,
}

/// The planned rewrite: deterministic (sorted by path then line, one
/// insertion per finding site and rule) and side-effect free until
/// [`apply`].
#[derive(Debug)]
pub struct FixPlan {
    pub insertions: Vec<Insertion>,
    /// Findings no scaffold can suppress.
    pub unfixable: usize,
}

impl FixPlan {
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty()
    }

    /// Paths touched, deduped, in order.
    pub fn files(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for ins in &self.insertions {
            if out.last() != Some(&ins.path.as_str()) {
                out.push(&ins.path);
            }
        }
        out
    }
}

/// Plans one insertion per fixable `(path, line, rule)` finding site.
pub fn plan(report: &CheckReport, files: &[SourceFile]) -> FixPlan {
    let mut seen: BTreeSet<(&str, usize, &str)> = BTreeSet::new();
    let mut insertions = Vec::new();
    let mut unfixable = 0usize;
    for finding in &report.findings {
        if !finding.fix_available {
            unfixable += 1;
            continue;
        }
        if !seen.insert((&finding.path, finding.line, finding.rule)) {
            continue;
        }
        let Some(src) = files.iter().find(|f| f.path == finding.path) else {
            unfixable += 1;
            continue;
        };
        let indent = indent_of(&src.text, finding.line);
        insertions.push(Insertion {
            path: finding.path.clone(),
            line: finding.line,
            text: format!(
                "{indent}// check:allow({}) TODO(triage): {}",
                finding.rule,
                summarize(&finding.message)
            ),
        });
    }
    insertions.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    FixPlan { insertions, unfixable }
}

/// The file's text with this plan's insertions applied (insertions
/// for other paths are ignored).
pub fn patched(path: &str, text: &str, plan: &FixPlan) -> String {
    let ends_with_newline = text.ends_with('\n');
    let mut lines: Vec<&str> = text.lines().collect();
    // Splice bottom-up so earlier insertions keep their line numbers.
    for ins in plan.insertions.iter().rev().filter(|i| i.path == path) {
        let at = ins.line.saturating_sub(1).min(lines.len());
        lines.insert(at, &ins.text);
    }
    let mut out = lines.join("\n");
    if ends_with_newline {
        out.push('\n');
    }
    out
}

/// A unified-diff-shaped rendering of the plan, for `--fix
/// --dry-run`: one hunk per insertion, with the finding line as
/// trailing context.
pub fn render_patch(plan: &FixPlan, files: &[SourceFile]) -> String {
    let mut out = String::new();
    let mut current: Option<&str> = None;
    for ins in &plan.insertions {
        if current != Some(ins.path.as_str()) {
            let _ = writeln!(out, "--- a/{}", ins.path);
            let _ = writeln!(out, "+++ b/{}", ins.path);
            current = Some(&ins.path);
        }
        let _ = writeln!(out, "@@ line {} @@", ins.line);
        let _ = writeln!(out, "+{}", ins.text);
        if let Some(src) = files.iter().find(|f| f.path == ins.path) {
            if let Some(line) = src.text.lines().nth(ins.line.saturating_sub(1)) {
                let _ = writeln!(out, " {line}");
            }
        }
    }
    out
}

/// Rewrites every planned file under `root`, atomically: the new text
/// goes to a temp file in the target's directory, then a rename
/// replaces the original. Returns the number of files rewritten.
pub fn apply(root: &Path, files: &[SourceFile], plan: &FixPlan) -> io::Result<usize> {
    let mut rewritten = 0usize;
    for path in plan.files() {
        let Some(src) = files.iter().find(|f| f.path == path) else { continue };
        let new_text = patched(path, &src.text, plan);
        let disk = root.join(path);
        let tmp = disk.with_extension("rs.check-fix-tmp");
        fs::write(&tmp, &new_text)?;
        fs::rename(&tmp, &disk)?;
        rewritten += 1;
    }
    Ok(rewritten)
}

/// The leading whitespace of `line` (1-based) in `text`.
fn indent_of(text: &str, line: usize) -> String {
    text.lines()
        .nth(line.saturating_sub(1))
        .map(|l| l.chars().take_while(|c| c.is_whitespace()).collect())
        .unwrap_or_default()
}

/// A finding message flattened to one pragma-reason line.
fn summarize(message: &str) -> String {
    let flat: String = message.split_whitespace().collect::<Vec<_>>().join(" ");
    if flat.chars().count() <= 120 {
        return flat;
    }
    let mut out: String = flat.chars().take(120).collect();
    out.push('…');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_files;

    #[test]
    fn patch_inserts_above_the_finding_with_matching_indent() {
        let file = SourceFile {
            path: "crates/math/src/f.rs".to_string(),
            text: "fn f() {\n    use std::collections::HashMap;\n}\n".to_string(),
        };
        let report = check_files(std::slice::from_ref(&file));
        assert_eq!(report.findings.len(), 1);
        let plan = plan(&report, std::slice::from_ref(&file));
        assert_eq!(plan.insertions.len(), 1);
        let new_text = patched(&file.path, &file.text, &plan);
        let fixed = SourceFile { path: file.path.clone(), text: new_text.clone() };
        let again = check_files(std::slice::from_ref(&fixed));
        assert!(again.is_clean(), "{:?}", again.findings);
        assert!(new_text.contains("    // check:allow(unordered-iteration) TODO(triage):"));
    }

    #[test]
    fn pragma_defects_are_not_scaffolded() {
        let file = SourceFile {
            path: "crates/math/src/f.rs".to_string(),
            text: "// check:allow(unordered-iteration) nothing here\nfn f() {}\n".to_string(),
        };
        let report = check_files(std::slice::from_ref(&file));
        assert_eq!(report.findings.len(), 1);
        let plan = plan(&report, std::slice::from_ref(&file));
        assert!(plan.is_empty());
        assert_eq!(plan.unfixable, 1);
    }
}
