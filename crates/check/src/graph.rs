//! Pass 2 of the two-pass analyzer: the graph rules. Everything here
//! reads the [`SymbolIndex`] — no re-tokenization, no per-file
//! heuristics.
//!
//! * **lock-order** — build the global lock-order graph over the
//!   classed locks ([`crate::symbols::LOCK_CLASSES`]): an edge A → B
//!   for every acquisition of class B while class A is held, and for
//!   every call made while A is held into a function whose transitive
//!   lock summary (a fixpoint over the workspace call graph) contains
//!   B. Only *cycles* are findings — a consistent global order needs
//!   no annotation at all, which is what retires the old per-fn
//!   `nested-lock` pragmas on classed pairs. A lock held across a
//!   call into a function that takes another lock is found even when
//!   the two acquisitions live in different files.
//! * **chunk-size-discipline** — the store's merge-on-read contract:
//!   the only value that may reach a `chunk_cover` call site is the
//!   `CHUNK_TRIALS` constant itself. A literal `512` is today's right
//!   answer and tomorrow's torn chunk.
//! * **axis-exhaustiveness** — every `Vec` axis field of
//!   `struct Sweep` must be referenced in every axis handler
//!   (`expanded_len`, `validate`, `expand`, `to_text`, `parse`): a
//!   new axis that expands but does not validate (or prints but does
//!   not parse) fails `check`, not a 3 AM sweep.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Token, TokenKind};
use crate::symbols::{SymbolIndex, SWEEP_FILE};
use crate::{Finding, SourceFile};

/// The chunking primitive and the one constant allowed to reach it.
const CHUNK_FN: &str = "chunk_cover";
const CHUNK_CONST: &str = "CHUNK_TRIALS";

/// Functions that must each handle every sweep axis.
const AXIS_HANDLERS: &[&str] = &["expanded_len", "validate", "expand", "to_text", "parse"];

/// One contribution to a lock-order edge, anchored where a pragma
/// could suppress it.
struct EdgeSite {
    path: String,
    line: usize,
    detail: String,
}

pub(crate) fn lock_order(files: &[SourceFile], index: &SymbolIndex, out: &mut Vec<Finding>) {
    // Per-fn lock summaries: every class the function may acquire,
    // directly or through any call chain, computed by fixpoint (the
    // call graph has cycles; the summary lattice is finite).
    let mut summaries: Vec<BTreeSet<&'static str>> = vec![BTreeSet::new(); index.fns.len()];
    for site in &index.lock_sites {
        if let (Some(caller), Some(class)) = (site.caller, site.class) {
            summaries[caller].insert(class);
        }
    }
    loop {
        let mut changed = false;
        for call in &index.call_sites {
            let Some(caller) = call.caller else { continue };
            for &callee in &call.callees {
                if callee == caller {
                    continue;
                }
                let add: Vec<&'static str> = summaries[callee].iter().copied().collect();
                for class in add {
                    changed |= summaries[caller].insert(class);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // The edge set. Direct edges: class B acquired while A held.
    // Propagated edges: a call made while A is held, into a function
    // whose summary contains B.
    let mut edges: BTreeMap<(&'static str, &'static str), Vec<EdgeSite>> = BTreeMap::new();
    for site in &index.lock_sites {
        let Some(to) = site.class else { continue };
        for held in &site.held_classes {
            edges.entry((held.class, to)).or_default().push(EdgeSite {
                path: files[site.file].path.clone(),
                line: site.line,
                detail: format!(
                    "`.{}()` acquires `{to}` while `{}` (line {}) is held",
                    site.method, held.class, held.line
                ),
            });
        }
    }
    for call in &index.call_sites {
        if call.held.is_empty() {
            continue;
        }
        let mut may_acquire: BTreeSet<&'static str> = BTreeSet::new();
        for &callee in &call.callees {
            may_acquire.extend(summaries[callee].iter().copied());
        }
        for to in may_acquire {
            for held in &call.held {
                edges.entry((held.class, to)).or_default().push(EdgeSite {
                    path: files[call.file].path.clone(),
                    line: call.line,
                    detail: format!(
                        "call into `{}` may acquire `{to}` while `{}` (line {}) is held",
                        call.name, held.class, held.line
                    ),
                });
            }
        }
    }

    // Reachability closure over the class graph; an edge A → B is a
    // finding iff B reaches back to A (B == A is the self-loop case:
    // these mutexes are not reentrant).
    let succ: BTreeMap<&'static str, BTreeSet<&'static str>> = {
        let mut s: BTreeMap<&'static str, BTreeSet<&'static str>> = BTreeMap::new();
        for (from, to) in edges.keys() {
            s.entry(from).or_default().insert(to);
        }
        s
    };
    let reaches = |from: &'static str, to: &'static str| -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(node) = queue.pop_front() {
            if node == to {
                return true;
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(next) = succ.get(node) {
                queue.extend(next.iter().copied());
            }
        }
        false
    };

    for ((from, to), sites) in &edges {
        if !(from == to || reaches(to, from)) {
            continue;
        }
        let cycle = cycle_path(&succ, from, to);
        let mut seen_lines: BTreeSet<(&str, usize)> = BTreeSet::new();
        for site in sites {
            if !seen_lines.insert((&site.path, site.line)) {
                continue;
            }
            out.push(Finding {
                rule: "lock-order",
                path: site.path.clone(),
                line: site.line,
                message: format!(
                    "{} — closes the lock-order cycle {cycle}; reorder the acquisitions, \
                     drop the guard before the call, or annotate why this cannot deadlock",
                    site.detail
                ),
                fix_available: true,
            });
        }
    }
}

/// A cycle witness through the edge `from → to`: the shortest path
/// from `to` back to `from`, rendered `from -> to -> … -> from`.
fn cycle_path(
    succ: &BTreeMap<&'static str, BTreeSet<&'static str>>,
    from: &'static str,
    to: &'static str,
) -> String {
    if from == to {
        return format!("{from} -> {to}");
    }
    let mut prev: BTreeMap<&'static str, &'static str> = BTreeMap::new();
    let mut queue = VecDeque::from([to]);
    while let Some(node) = queue.pop_front() {
        if node == from {
            break;
        }
        for &next in succ.get(node).into_iter().flatten() {
            if next != to && !prev.contains_key(next) {
                prev.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    let mut back = vec![from];
    while let Some(&p) = prev.get(back.last().copied().unwrap_or(from)) {
        back.push(p);
        if p == to {
            break;
        }
    }
    // back is [from, …, to]; the cycle reads from -> to -> … -> from.
    let mut names: Vec<&str> = vec![from];
    names.extend(back.iter().rev().copied());
    names.join(" -> ")
}

pub(crate) fn chunk_size_discipline(
    files: &[SourceFile],
    index: &SymbolIndex,
    out: &mut Vec<Finding>,
) {
    for (fi, lex) in index.lexed.iter().enumerate() {
        let t = &lex.tokens;
        for i in 0..t.len() {
            if !t[i].is_ident(CHUNK_FN)
                || !t.get(i + 1).is_some_and(|p| p.is_punct('('))
                || (i > 0 && t[i - 1].is_ident("fn"))
            {
                continue;
            }
            let Some(arg) = second_arg(t, i + 1) else { continue };
            if arg.len() == 1 && arg[0].is_ident(CHUNK_CONST) {
                continue;
            }
            let shown: String =
                arg.iter().map(|tok| tok.text.as_str()).collect::<Vec<_>>().join(" ");
            out.push(Finding {
                rule: "chunk-size-discipline",
                path: files[fi].path.clone(),
                line: t[i].line,
                message: format!(
                    "`{CHUNK_FN}` called with chunk `{}` — only the `{CHUNK_CONST}` constant \
                     may reach a chunking site, or merged reads see torn chunk boundaries",
                    truncate(&shown, 40)
                ),
                fix_available: true,
            });
        }
    }
}

/// The tokens of the second top-level argument of the call whose `(`
/// is at `open`, or None when the call has fewer than two arguments.
fn second_arg(t: &[Token], open: usize) -> Option<&[Token]> {
    let mut depth = 0i64;
    let mut first_comma: Option<usize> = None;
    let mut j = open;
    loop {
        let tok = t.get(j)?;
        if tok.kind == TokenKind::Punct {
            match tok.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return first_comma.map(|c| &t[c + 1..j]).filter(|a| !a.is_empty());
                    }
                }
                "," if depth == 1 => match first_comma {
                    None => first_comma = Some(j),
                    Some(c) => return Some(&t[c + 1..j]),
                },
                _ => {}
            }
        }
        j += 1;
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        return s.to_string();
    }
    let mut out: String = s.chars().take(max).collect();
    out.push('…');
    out
}

pub(crate) fn axis_exhaustiveness(
    files: &[SourceFile],
    index: &SymbolIndex,
    out: &mut Vec<Finding>,
) {
    if index.axis_fields.is_empty() {
        return;
    }
    let file = index.axis_fields[0].file;
    let first_line = index.axis_fields[0].line;
    let t = &index.lexed[file].tokens;
    for handler in AXIS_HANDLERS {
        let defs = index.fns_named(file, handler);
        if defs.is_empty() {
            out.push(Finding {
                rule: "axis-exhaustiveness",
                path: files[file].path.clone(),
                line: first_line,
                message: format!(
                    "axis handler fn `{handler}` not found in {SWEEP_FILE} — every sweep \
                     axis must be counted, validated, expanded, printed, and parsed"
                ),
                fix_available: true,
            });
            continue;
        }
        for axis in &index.axis_fields {
            let mentioned = defs.iter().any(|&id| {
                let def = &index.fns[id];
                t[def.start..def.end.min(t.len())]
                    .iter()
                    .any(|tok| tok.kind == TokenKind::Ident && tok.text == axis.name)
            });
            if !mentioned {
                out.push(Finding {
                    rule: "axis-exhaustiveness",
                    path: files[file].path.clone(),
                    line: axis.line,
                    message: format!(
                        "sweep axis `{}` is not handled in `{handler}` — a `Vec` axis on \
                         `Sweep` must appear in every axis handler ({})",
                        axis.name,
                        AXIS_HANDLERS.join(", ")
                    ),
                    fix_available: true,
                });
            }
        }
    }
}
