//! The rule engine: eight named, deny-by-default lints, plus the
//! pragma machinery that lets a finding be explicitly allowlisted in
//! place — `check:allow(rule) reason`, in a plain `//` comment (doc
//! comments are documentation, never pragmas), with a mandatory human
//! reason. A pragma covers the statement it precedes (or shares a
//! line with); an unmatched pragma is itself a finding, so the
//! allowlist can never rot.
//!
//! Analysis runs in two passes: pass 1 builds the workspace
//! [`symbols::SymbolIndex`] (fn spans, classed lock sites, resolved
//! call sites, sweep axes), pass 2 runs the five local rules over
//! each file and the three graph rules ([`crate::graph`]) over the
//! index, and only then matches *all* findings — local and
//! cross-file alike — against the pragmas of the file each finding
//! anchors in.

use crate::frames;
use crate::graph;
use crate::lexer::{Comment, Lexed, TokenKind};
use crate::symbols::SymbolIndex;
use crate::{Allowed, CheckReport, Finding, SourceFile};

/// The rule names, as they appear in findings and pragmas.
pub const RULES: &[&str] = &[
    "unordered-iteration",
    "daemon-panic",
    "clock-discipline",
    "frame-registry",
    "nested-lock",
    "lock-order",
    "chunk-size-discipline",
    "axis-exhaustiveness",
];

/// Crates whose entire `src` tree sits on the determinism surface:
/// their iteration order can reach report or wire bytes.
const DETERMINISM_CRATES: &[&str] = &[
    "crates/assembly/src/",
    "crates/benchmarks/src/",
    "crates/circuit/src/",
    "crates/collision/src/",
    "crates/core/src/",
    "crates/math/src/",
    "crates/noise/src/",
    "crates/sim/src/",
    "crates/store/src/",
    "crates/topology/src/",
    "crates/transpile/src/",
    "crates/yield/src/",
];

/// Engine files on the determinism surface (the rest of the engine —
/// CLI, service plumbing — only moves opaque report bytes around).
const DETERMINISM_ENGINE_FILES: &[&str] = &[
    "crates/engine/src/mesh.rs",
    "crates/engine/src/report.rs",
    "crates/engine/src/scenario.rs",
    "crates/engine/src/scheduler.rs",
    "crates/engine/src/suite.rs",
    "crates/engine/src/sweep.rs",
];

/// Long-lived daemon paths: a panic here takes down the warm hub and
/// every queued client, so panicking constructs are denied.
const DAEMON_FILES: &[&str] = &[
    "crates/engine/src/mesh.rs",
    "crates/engine/src/protocol.rs",
    "crates/engine/src/scheduler.rs",
    "crates/engine/src/service.rs",
    "crates/store/src/remote.rs",
    "crates/store/src/wire.rs",
];

/// The two files that write or read wire frames.
const FRAME_FILES: &[&str] = &["crates/engine/src/protocol.rs", "crates/store/src/remote.rs"];

/// Where the registry table itself lives; registry-level defects and
/// stale-row findings anchor here.
const REGISTRY_FILE: &str = "crates/check/src/frames.rs";

/// The one crate allowed to read wall clocks without annotation.
const CLOCK_CRATE: &str = "crates/obs/src/";

fn on_determinism_surface(path: &str) -> bool {
    DETERMINISM_CRATES.iter().any(|p| path.starts_with(p))
        || DETERMINISM_ENGINE_FILES.contains(&path)
}

/// An allow pragma, parsed from a plain `//` comment.
struct Pragma {
    rule: String,
    reason: String,
    /// Line of the comment itself.
    line: usize,
    /// Lines of the statement the pragma covers.
    covers: (usize, usize),
    used: bool,
}

pub fn analyze(files: &[SourceFile]) -> CheckReport {
    let index = SymbolIndex::build(files);
    analyze_indexed(files, &index)
}

/// Pass 2 over a prebuilt index (the CLI builds the index under its
/// own obs span, then calls this).
pub fn analyze_indexed(files: &[SourceFile], index: &SymbolIndex) -> CheckReport {
    // Raw findings: the five local rules, then the three graph rules.
    let mut raw: Vec<Finding> = Vec::new();
    for (i, file) in files.iter().enumerate() {
        let lex = &index.lexed[i];
        unordered_iteration(file, lex, &mut raw);
        daemon_panic(file, lex, &mut raw);
        clock_discipline(file, lex, &mut raw);
        frame_literals(file, lex, &mut raw);
    }
    nested_lock(files, index, &mut raw);
    graph::lock_order(files, index, &mut raw);
    graph::chunk_size_discipline(files, index, &mut raw);
    graph::axis_exhaustiveness(files, index, &mut raw);

    // Pragma matching runs after every anchored rule, so a cross-file
    // lock-order finding is suppressible at its own site like any
    // local finding.
    let mut findings: Vec<Finding> = Vec::new();
    let mut allowed: Vec<Allowed> = Vec::new();
    let mut pragmas: Vec<(usize, Vec<Pragma>)> = files
        .iter()
        .enumerate()
        .map(|(i, file)| (i, collect_pragmas(file, &index.lexed[i], &mut findings)))
        .collect();
    for finding in raw {
        let hit = files
            .iter()
            .position(|f| f.path == finding.path)
            .and_then(|fi| pragmas.iter_mut().find(|(i, _)| *i == fi))
            .and_then(|(_, ps)| {
                ps.iter_mut().find(|p| {
                    p.rule == finding.rule
                        && finding.line >= p.covers.0
                        && finding.line <= p.covers.1
                })
            });
        match hit {
            Some(pragma) => {
                pragma.used = true;
                allowed.push(Allowed {
                    rule: finding.rule,
                    path: finding.path,
                    line: finding.line,
                    reason: pragma.reason.clone(),
                });
            }
            None => findings.push(finding),
        }
    }
    for (fi, ps) in &pragmas {
        for pragma in ps.iter().filter(|p| !p.used) {
            findings.push(Finding {
                rule: "pragma",
                path: files[*fi].path.clone(),
                line: pragma.line,
                message: format!(
                    "allow pragma for `{}` matched no finding — remove it",
                    pragma.rule
                ),
                fix_available: false,
            });
        }
    }

    frame_registry_global(files, index, &mut findings);

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    allowed.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    CheckReport { findings, allowed, files_scanned: files.len() }
}

/// Parses `check:allow(rule) reason` pragmas out of a file's plain
/// comments. Malformed pragmas (no closing paren, unknown rule, empty
/// reason) are findings in their own right — an escape hatch that can
/// be silently wrong is worse than none.
fn collect_pragmas(file: &SourceFile, lex: &Lexed, findings: &mut Vec<Finding>) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for comment in lex.comments.iter().filter(|c| !c.doc) {
        let Some(rest) = comment.text.trim().strip_prefix("check:allow(") else { continue };
        let Some(close) = rest.find(')') else {
            push_pragma_finding(findings, file, comment, "missing `)` after the rule name");
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim().to_string();
        if !RULES.contains(&rule.as_str()) {
            push_pragma_finding(
                findings,
                file,
                comment,
                &format!("unknown rule `{rule}` (rules: {})", RULES.join(", ")),
            );
            continue;
        }
        if reason.is_empty() {
            push_pragma_finding(
                findings,
                file,
                comment,
                &format!("allow pragma for `{rule}` requires a reason"),
            );
            continue;
        }
        let covers = pragma_coverage(lex, comment.line);
        pragmas.push(Pragma { rule, reason, line: comment.line, covers, used: false });
    }
    pragmas
}

fn push_pragma_finding(findings: &mut Vec<Finding>, file: &SourceFile, c: &Comment, msg: &str) {
    findings.push(Finding {
        rule: "pragma",
        path: file.path.clone(),
        line: c.line,
        message: msg.to_string(),
        fix_available: false,
    });
}

/// The lines a pragma suppresses: the statement beginning on the
/// pragma's own line (suffix form) or on the first token line after
/// it, extended through the statement's terminating `;`, opening
/// `{`, or closing `}` — capped so a confused parse can never
/// suppress half a file.
fn pragma_coverage(lex: &Lexed, comment_line: usize) -> (usize, usize) {
    const MAX_SPAN: usize = 25;
    let own_line = lex.tokens.iter().any(|t| t.line == comment_line);
    let start_line = if own_line {
        comment_line
    } else {
        lex.tokens
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > comment_line)
            .min()
            .unwrap_or(comment_line)
    };
    let Some(first) = lex.tokens.iter().position(|t| t.line >= start_line) else {
        return (start_line, start_line);
    };
    let mut depth = 0i64;
    let mut end_line = start_line;
    for token in &lex.tokens[first..] {
        if token.line > start_line + MAX_SPAN {
            break;
        }
        end_line = token.line;
        if token.kind == TokenKind::Punct {
            match token.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => break,
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" if depth <= 0 => break,
                _ => {}
            }
        }
    }
    (start_line.min(comment_line), end_line)
}

/// Rule `unordered-iteration`: no `HashMap`/`HashSet` identifiers on
/// the determinism surface. Hash iteration order varies run to run
/// and (for the default hasher) process to process; one stray
/// `.iter()` can reach report or wire bytes.
fn unordered_iteration(file: &SourceFile, lex: &Lexed, out: &mut Vec<Finding>) {
    if !on_determinism_surface(&file.path) {
        return;
    }
    for token in &lex.tokens {
        if token.kind == TokenKind::Ident
            && (token.text == "HashMap" || token.text == "HashSet")
        {
            out.push(Finding {
                rule: "unordered-iteration",
                path: file.path.clone(),
                line: token.line,
                message: format!(
                    "`{}` on the determinism surface — use BTreeMap/BTreeSet or sort at \
                     the serialization boundary",
                    token.text
                ),
                fix_available: true,
            });
        }
    }
}

/// Rule `daemon-panic`: no panicking constructs in the long-lived
/// daemon paths. A panic in a connection handler or the scheduler
/// kills the warm hub for every tenant; errors must become error
/// frames or logged continues.
fn daemon_panic(file: &SourceFile, lex: &Lexed, out: &mut Vec<Finding>) {
    if !DAEMON_FILES.contains(&file.path.as_str()) {
        return;
    }
    let t = &lex.tokens;
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident {
            continue;
        }
        let name = t[i].text.as_str();
        let method_call =
            i > 0 && t[i - 1].is_punct('.') && t.get(i + 1).is_some_and(|n| n.is_punct('('));
        let macro_call = t.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let flagged = match name {
            "unwrap" | "expect" => method_call,
            "panic" | "unreachable" | "todo" | "unimplemented" => macro_call,
            _ => false,
        };
        if flagged {
            let form = if method_call { format!(".{name}()") } else { format!("{name}!") };
            out.push(Finding {
                rule: "daemon-panic",
                path: file.path.clone(),
                line: t[i].line,
                message: format!(
                    "`{form}` in daemon code — return an error frame, log and continue, \
                     or recover (poisoned locks: `unwrap_or_else(PoisonError::into_inner)`)"
                ),
                fix_available: true,
            });
        }
    }
}

/// Rule `clock-discipline`: `Instant::now` / `SystemTime::now` only
/// inside `crates/obs` (the telemetry layer owns time) or at
/// explicitly annotated timeout sites. Unannotated clock reads are
/// how nondeterminism leaks into supposedly pure paths.
fn clock_discipline(file: &SourceFile, lex: &Lexed, out: &mut Vec<Finding>) {
    if file.path.starts_with(CLOCK_CRATE) {
        return;
    }
    let t = &lex.tokens;
    for i in 0..t.len() {
        let is_clock_type = t[i].is_ident("Instant") || t[i].is_ident("SystemTime");
        if is_clock_type
            && t.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && t.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && t.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            out.push(Finding {
                rule: "clock-discipline",
                path: file.path.clone(),
                line: t[i].line,
                message: format!(
                    "`{}::now` outside crates/obs — route timing through chipletqc-obs, \
                     or annotate a genuine timeout/deadline site",
                    t[i].text
                ),
                fix_available: true,
            });
        }
    }
}

/// Rule `nested-lock`: a `.lock()`/`.read()`/`.write()` acquired
/// while another guard from the same function body may still be live
/// — the lock-order-inversion shape that deadlocks the multi-tenant
/// service. Liveness comes from the symbol index (let-bound guards
/// until block close or `drop(name)`, temporaries until the `;`;
/// stdio locks exempt). When both the held guard and the new
/// acquisition belong to workspace lock classes, the site is the
/// whole-workspace `lock-order` graph's responsibility instead: a
/// consistent classed order needs no per-site annotation, and an
/// inconsistent one is a `lock-order` cycle finding even when the
/// acquisitions live in different functions or files.
fn nested_lock(files: &[SourceFile], index: &SymbolIndex, out: &mut Vec<Finding>) {
    for site in &index.lock_sites {
        let Some(held) = &site.held_first else { continue };
        if held.class.is_some() && site.class.is_some() {
            continue;
        }
        let held_desc = match &held.name {
            Some(name) => format!("`{name}` (line {})", held.line),
            None => format!("a temporary guard (line {})", held.line),
        };
        out.push(Finding {
            rule: "nested-lock",
            path: files[site.file].path.clone(),
            line: site.line,
            message: format!(
                "`.{}()` while {held_desc} may still be held — drop the first guard \
                 first, or annotate why the order is deadlock-free",
                site.method
            ),
            fix_available: true,
        });
    }
}

/// Per-file half of rule `frame-registry`: every string literal of
/// the form `{VERSION} <verb>` in a frame file must name a registered
/// frame. The dynamic-writer form (`"{VERSION} {verb}"`) carries no
/// literal verb and is covered by the reverse check instead.
fn frame_literals(file: &SourceFile, lex: &Lexed, out: &mut Vec<Finding>) {
    if !FRAME_FILES.contains(&file.path.as_str()) {
        return;
    }
    for token in lex.tokens.iter().filter(|t| t.kind == TokenKind::Str) {
        let Some(verb) = frame_verb(&token.text) else { continue };
        if !frames::is_registered(verb) {
            out.push(Finding {
                rule: "frame-registry",
                path: file.path.clone(),
                line: token.line,
                message: format!(
                    "frame verb `{verb}` is not in the registry — add a FrameSpec row to \
                     {REGISTRY_FILE} (and prove prefix-freedom) before emitting it"
                ),
                fix_available: true,
            });
        }
    }
}

/// Extracts the literal verb from a `{VERSION} …` format string, or
/// None when the string is not a frame head or the verb is itself an
/// interpolation.
fn frame_verb(content: &str) -> Option<&str> {
    let rest = content.strip_prefix("{VERSION} ")?;
    let end = rest
        .find(|c: char| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    Some(&rest[..end])
}

/// Workspace half of rule `frame-registry`, run only when both frame
/// files are in the scanned set (fixture runs see a partial corpus):
/// registry self-consistency (verb/header well-formedness, shape
/// discriminability, pairwise prefix-freedom of rendered heads), no
/// stale registry rows, and VERSION agreement with `wire.rs`. These
/// findings anchor on the registry, not a source site, so no pragma
/// (and no `--fix` scaffold) can suppress them.
fn frame_registry_global(files: &[SourceFile], index: &SymbolIndex, out: &mut Vec<Finding>) {
    let frame_files: Vec<usize> = files
        .iter()
        .enumerate()
        .filter(|(_, f)| FRAME_FILES.contains(&f.path.as_str()))
        .map(|(i, _)| i)
        .collect();
    if frame_files.len() < FRAME_FILES.len() {
        return;
    }

    for defect in frames::corpus_defects() {
        out.push(Finding {
            rule: "frame-registry",
            path: REGISTRY_FILE.to_string(),
            line: 1,
            message: defect,
            fix_available: false,
        });
    }

    // Reverse check: every registered verb must be reachable from the
    // sources — either as a `{VERSION} verb` head literal or as a
    // bare verb literal (reader match arms, dynamic-writer callers).
    let mut literals: Vec<&str> = Vec::new();
    for &fi in &frame_files {
        for token in index.lexed[fi].tokens.iter().filter(|t| t.kind == TokenKind::Str) {
            literals.push(&token.text);
        }
    }
    for spec in frames::FRAMES {
        let seen = literals
            .iter()
            .any(|text| frame_verb(text) == Some(spec.verb) || *text == spec.verb);
        if !seen {
            out.push(Finding {
                rule: "frame-registry",
                path: REGISTRY_FILE.to_string(),
                line: 1,
                message: format!(
                    "registry row `{}` {:?} matches no literal in {} — stale row?",
                    spec.verb,
                    spec.headers,
                    FRAME_FILES.join(" / ")
                ),
                fix_available: false,
            });
        }
    }

    // The registry's VERSION constant must track the wire module's.
    if let Some(wire) = files.iter().position(|f| f.path == "crates/store/src/wire.rs") {
        let declared = index.lexed[wire]
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str && t.text.starts_with("chipletqc/"))
            .map(|t| t.text.as_str());
        if declared != Some(frames::VERSION) {
            out.push(Finding {
                rule: "frame-registry",
                path: REGISTRY_FILE.to_string(),
                line: 1,
                message: format!(
                    "registry VERSION `{}` does not match wire.rs ({declared:?})",
                    frames::VERSION
                ),
                fix_available: false,
            });
        }
    }
}
