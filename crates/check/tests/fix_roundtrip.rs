//! `check --fix` round trip: scaffold allow pragmas over the bad
//! lock-order fixture, re-check, and land clean with `TODO(triage)`
//! reasons — the one-command triage workflow the flag exists for.

use std::fs;
use std::path::Path;

use chipletqc_check::{check_files, fix, SourceFile};

fn bad_fixture() -> SourceFile {
    let disk = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lock_order_bad.rs");
    SourceFile {
        path: "crates/engine/src/scheduler.rs".to_string(),
        text: fs::read_to_string(&disk)
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", disk.display())),
    }
}

#[test]
fn fix_round_trip_lands_clean_with_triage_reasons() {
    let files = [bad_fixture()];
    let report = check_files(&files);
    assert!(!report.is_clean(), "bad fixture must start dirty");

    let plan = fix::plan(&report, &files);
    assert!(!plan.is_empty());
    assert_eq!(plan.unfixable, 0, "every lock-order finding scaffolds");

    let fixed = SourceFile {
        path: files[0].path.clone(),
        text: fix::patched(&files[0].path, &files[0].text, &plan),
    };
    let again = check_files(std::slice::from_ref(&fixed));
    assert!(again.is_clean(), "{:?}", again.findings);
    assert!(!again.allowed.is_empty());
    assert!(
        again.allowed.iter().all(|a| a.reason.contains("TODO(triage)")),
        "{:?}",
        again.allowed
    );
}

#[test]
fn dry_run_patch_names_every_insertion_and_keeps_context() {
    let files = [bad_fixture()];
    let report = check_files(&files);
    let plan = fix::plan(&report, &files);
    let patch = fix::render_patch(&plan, &files);
    assert!(patch.contains("--- a/crates/engine/src/scheduler.rs"));
    assert!(patch.contains("+++ b/crates/engine/src/scheduler.rs"));
    assert_eq!(patch.matches("check:allow(lock-order)").count(), plan.insertions.len());
}

#[test]
fn apply_rewrites_on_disk_and_leaves_no_temp_files() {
    let root = std::env::temp_dir().join(format!("chipletqc-check-fix-{}", std::process::id()));
    let dir = root.join("crates/engine/src");
    fs::create_dir_all(&dir).expect("fixture tree");
    let file = bad_fixture();
    fs::write(root.join(&file.path), &file.text).expect("seed fixture");

    let files = [file];
    let report = check_files(&files);
    let plan = fix::plan(&report, &files);
    let rewritten = fix::apply(&root, &files, &plan).expect("apply");
    assert_eq!(rewritten, 1);

    let text = fs::read_to_string(root.join(&files[0].path)).expect("read back");
    assert!(text.contains("// check:allow(lock-order) TODO(triage):"));
    let leftovers = fs::read_dir(&dir)
        .expect("fixture dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains("check-fix-tmp"))
        .count();
    assert_eq!(leftovers, 0, "temp files must not survive the rename");

    let again = check_files(&[SourceFile { path: files[0].path.clone(), text }]);
    assert!(again.is_clean(), "{:?}", again.findings);
    fs::remove_dir_all(&root).ok();
}
