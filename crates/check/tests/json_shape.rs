//! Golden shape for `check --format json`. Downstream tooling (the CI
//! static-analysis job, editor annotations) keys on these exact
//! names; this test is the schema's change detector — bump `schema`
//! when it has to move.

use chipletqc_check::{Allowed, CheckReport, Finding};

#[test]
fn schema_two_shape_is_pinned() {
    let report = CheckReport {
        findings: vec![Finding {
            rule: "lock-order",
            path: "crates/a/src/x.rs".to_string(),
            line: 7,
            message: "cycle".to_string(),
            fix_available: true,
        }],
        allowed: vec![Allowed {
            rule: "nested-lock",
            path: "crates/a/src/y.rs".to_string(),
            line: 9,
            reason: "left then right".to_string(),
        }],
        files_scanned: 2,
    };
    let expected = concat!(
        "{\n",
        "  \"schema\": 2,\n",
        "  \"files_scanned\": 2,\n",
        "  \"clean\": false,\n",
        "  \"findings\": [\n",
        "    {\"rule\": \"lock-order\", \"file\": \"crates/a/src/x.rs\", \"line\": 7, ",
        "\"message\": \"cycle\", \"fix_available\": true}\n",
        "  ],\n",
        "  \"allowed\": [\n",
        "    {\"rule\": \"nested-lock\", \"file\": \"crates/a/src/y.rs\", \"line\": 9, ",
        "\"reason\": \"left then right\"}\n",
        "  ]\n",
        "}\n",
    );
    assert_eq!(report.to_json(), expected);
}

#[test]
fn empty_report_shape_is_pinned() {
    let report = CheckReport { findings: vec![], allowed: vec![], files_scanned: 0 };
    let expected = concat!(
        "{\n",
        "  \"schema\": 2,\n",
        "  \"files_scanned\": 0,\n",
        "  \"clean\": true,\n",
        "  \"findings\": [],\n",
        "  \"allowed\": []\n",
        "}\n",
    );
    assert_eq!(report.to_json(), expected);
}
