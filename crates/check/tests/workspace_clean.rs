//! The real workspace must be clean: zero unallowlisted findings,
//! and every allowlist entry must carry a substantive reason. This is
//! the same sweep `chipletqc-engine check` (and the CI
//! `static-analysis` job) runs — keeping it in the tier-1 test suite
//! means a regression is caught even before CI.

use std::path::Path;

use chipletqc_check::check_workspace;

fn workspace_root() -> &'static Path {
    // crates/check -> crates -> workspace root.
    let crates = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("crates dir");
    crates.parent().expect("workspace root")
}

#[test]
fn workspace_has_zero_unallowlisted_findings() {
    let report = check_workspace(workspace_root()).expect("workspace scan failed");
    assert!(
        report.files_scanned > 50,
        "suspiciously small scan ({} files) — wrong root?",
        report.files_scanned
    );
    assert!(report.is_clean(), "workspace findings:\n{}", report.to_text());
}

#[test]
fn all_eight_rules_are_registered() {
    // The clean sweep above only means something if the full rule set
    // ran: five local rules plus the three graph rules.
    assert_eq!(chipletqc_check::RULES.len(), 8, "{:?}", chipletqc_check::RULES);
    for rule in ["lock-order", "chunk-size-discipline", "axis-exhaustiveness"] {
        assert!(chipletqc_check::RULES.contains(&rule), "missing {rule}");
    }
}

#[test]
fn every_allowlist_entry_has_a_substantive_reason() {
    let report = check_workspace(workspace_root()).expect("workspace scan failed");
    assert!(
        !report.allowed.is_empty(),
        "the tree has deliberate allowlists; zero is a scan bug"
    );
    for entry in &report.allowed {
        assert!(
            entry.reason.split_whitespace().count() >= 3,
            "{}:{} [{}] reason too thin: {:?}",
            entry.path,
            entry.line,
            entry.rule,
            entry.reason
        );
    }
}
