//! Fixture corpus: one known-bad and one known-good file per rule.
//! Each fixture is checked under a pseudo-path inside the rule's
//! scope, so the test exercises exactly the scoping a real workspace
//! file would get.

use std::fs;
use std::path::Path;

use chipletqc_check::{check_files, CheckReport, SourceFile};

/// Loads a fixture and assigns it the given workspace pseudo-path.
fn fixture(name: &str, pseudo_path: &str) -> SourceFile {
    let disk = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let text = fs::read_to_string(&disk)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", disk.display()));
    SourceFile { path: pseudo_path.to_string(), text }
}

fn run(name: &str, pseudo_path: &str) -> CheckReport {
    check_files(&[fixture(name, pseudo_path)])
}

/// The bad fixture must produce at least one finding under the target
/// rule; the good fixture must be fully clean (which also proves its
/// pragmas, if any, all matched — an unused pragma is a finding).
fn assert_pair(rule: &str, bad: &str, good: &str, pseudo_path: &str) {
    let bad_report = run(bad, pseudo_path);
    assert!(
        bad_report.findings.iter().any(|f| f.rule == rule),
        "{bad} under {pseudo_path}: expected a `{rule}` finding, got {:?}",
        bad_report.findings
    );
    let good_report = run(good, pseudo_path);
    assert!(
        good_report.is_clean(),
        "{good} under {pseudo_path}: expected clean, got {:?}",
        good_report.findings
    );
}

#[test]
fn unordered_iteration_fixtures() {
    assert_pair(
        "unordered-iteration",
        "unordered_iteration_bad.rs",
        "unordered_iteration_good.rs",
        "crates/math/src/fixture.rs",
    );
}

#[test]
fn unordered_iteration_is_scoped_to_the_determinism_surface() {
    // The same hash-heavy content is fine in a file that never feeds
    // report or wire bytes.
    let report = run("unordered_iteration_bad.rs", "crates/engine/src/main.rs");
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn daemon_panic_fixtures() {
    assert_pair(
        "daemon-panic",
        "daemon_panic_bad.rs",
        "daemon_panic_good.rs",
        "crates/engine/src/service.rs",
    );
}

#[test]
fn daemon_panic_bad_flags_every_construct() {
    let report = run("daemon_panic_bad.rs", "crates/engine/src/service.rs");
    let lines: Vec<usize> =
        report.findings.iter().filter(|f| f.rule == "daemon-panic").map(|f| f.line).collect();
    // unwrap, expect, panic!, unreachable! — and nothing from the
    // #[cfg(test)] module at the bottom of the fixture.
    assert_eq!(lines.len(), 4, "{:?}", report.findings);
    assert!(lines.iter().all(|&l| l < 16), "test-module code was flagged: {lines:?}");
}

#[test]
fn daemon_panic_is_scoped_to_daemon_files() {
    let report = run("daemon_panic_bad.rs", "crates/engine/src/main.rs");
    assert!(!report.findings.iter().any(|f| f.rule == "daemon-panic"), "{:?}", report.findings);
}

#[test]
fn clock_discipline_fixtures() {
    assert_pair(
        "clock-discipline",
        "clock_discipline_bad.rs",
        "clock_discipline_good.rs",
        "crates/circuit/src/timing.rs",
    );
}

#[test]
fn clock_discipline_exempts_obs() {
    let report = run("clock_discipline_bad.rs", "crates/obs/src/telemetry.rs");
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn frame_registry_fixtures() {
    assert_pair(
        "frame-registry",
        "frame_registry_bad.rs",
        "frame_registry_good.rs",
        "crates/engine/src/protocol.rs",
    );
}

#[test]
fn frame_registry_is_scoped_to_frame_files() {
    // Outside the two frame files a `{VERSION} …` string is just a
    // string.
    let report = run("frame_registry_bad.rs", "crates/engine/src/main.rs");
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn nested_lock_fixtures() {
    assert_pair(
        "nested-lock",
        "nested_lock_bad.rs",
        "nested_lock_good.rs",
        "crates/math/src/pair.rs",
    );
}

#[test]
fn nested_lock_good_records_the_deliberate_overlap() {
    let report = run("nested_lock_good.rs", "crates/math/src/pair.rs");
    assert_eq!(report.allowed.len(), 1, "{:?}", report.allowed);
    assert_eq!(report.allowed[0].rule, "nested-lock");
    assert!(report.allowed[0].reason.contains("left then right"));
}

#[test]
fn lock_order_fixtures() {
    assert_pair(
        "lock-order",
        "lock_order_bad.rs",
        "lock_order_good.rs",
        "crates/engine/src/scheduler.rs",
    );
}

#[test]
fn lock_order_cycle_across_call_edges_is_invisible_to_nested_lock() {
    // Each function in the bad fixture acquires exactly one lock in
    // its own body — the old per-fn rule has nothing to report — yet
    // the call-edge-propagated graph closes the cycle.
    let report = run("lock_order_bad.rs", "crates/engine/src/scheduler.rs");
    assert!(
        !report.findings.iter().any(|f| f.rule == "nested-lock"),
        "nested-lock fired where it provably cannot see: {:?}",
        report.findings
    );
    let cycles: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order")
        .map(|f| f.message.as_str())
        .collect();
    assert!(cycles.len() >= 2, "expected both half-cycles, got {cycles:?}");
    assert!(cycles.iter().all(|m| m.contains("lock-order cycle")), "{cycles:?}");
}

#[test]
fn chunk_size_discipline_fixtures() {
    assert_pair(
        "chunk-size-discipline",
        "chunk_size_bad.rs",
        "chunk_size_good.rs",
        "crates/store/src/products.rs",
    );
}

#[test]
fn chunk_size_bad_flags_both_drifting_sites() {
    let report = run("chunk_size_bad.rs", "crates/store/src/products.rs");
    let n = report.findings.iter().filter(|f| f.rule == "chunk-size-discipline").count();
    // The literal 512 and the derived local — the definition of
    // `chunk_cover` itself is not a call site.
    assert_eq!(n, 2, "{:?}", report.findings);
}

#[test]
fn axis_exhaustiveness_fixtures() {
    assert_pair(
        "axis-exhaustiveness",
        "axis_exhaustiveness_bad.rs",
        "axis_exhaustiveness_good.rs",
        "crates/engine/src/sweep.rs",
    );
}

#[test]
fn axis_exhaustiveness_is_scoped_to_the_sweep_file() {
    // `struct Sweep` anywhere else is just a struct.
    let report = run("axis_exhaustiveness_bad.rs", "crates/engine/src/scenario.rs");
    assert!(
        !report.findings.iter().any(|f| f.rule == "axis-exhaustiveness"),
        "{:?}",
        report.findings
    );
}
