//! Bad fixture: a two-function lock-order cycle across call edges.
//! `enqueue` holds the pool state while calling into a function that
//! takes the sched lock; `drain` holds the sched lock while calling
//! into a function that takes the pool state. Neither function
//! acquires two locks in its own body, so the per-fn nested-lock rule
//! provably cannot see the inversion — only the whole-workspace
//! lock-order graph can.

use std::sync::{Mutex, PoisonError};

pub struct Pool {
    state: Mutex<Vec<u64>>,
    sched: Mutex<Vec<u64>>,
}

impl Pool {
    pub fn enqueue(&self, task: u64) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.push(task);
        self.note_sched(task);
    }

    fn note_sched(&self, task: u64) {
        let mut sched = self.sched.lock().unwrap_or_else(PoisonError::into_inner);
        sched.push(task);
    }

    pub fn drain(&self) -> u64 {
        let mut sched = self.sched.lock().unwrap_or_else(PoisonError::into_inner);
        let task = sched.pop().unwrap_or_default();
        self.note_state(task);
        task
    }

    fn note_state(&self, task: u64) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.retain(|&t| t != task);
    }
}
