// Known-good: guards are retired before the next lock is taken —
// by drop(), by scope, or (when overlap is deliberate) under an
// allowlist pragma stating the ordering invariant.
use std::sync::Mutex;

pub struct Pair {
    left: Mutex<u64>,
    right: Mutex<u64>,
}

impl Pair {
    pub fn total_dropped(&self) -> u64 {
        let left = self.left.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let l = *left;
        drop(left);
        let right = self.right.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        l + *right
    }

    pub fn total_scoped(&self) -> u64 {
        let l = {
            let left = self.left.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            *left
        };
        let right = self.right.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        l + *right
    }

    pub fn swap(&self) {
        let mut left = self.left.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // check:allow(nested-lock) every Pair method takes left then right; right is never held across a left acquisition
        let mut right = self.right.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::swap(&mut *left, &mut *right);
    }
}
