// Known-bad: hash collections on the determinism surface. Iterating
// either one can reorder report bytes run to run.
use std::collections::{HashMap, HashSet};

pub fn histogram(names: &[String]) -> Vec<(String, usize)> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut seen = HashSet::new();
    for name in names {
        seen.insert(name.clone());
        *counts.entry(name.clone()).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
