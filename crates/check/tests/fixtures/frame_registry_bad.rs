// Known-bad: emits a frame head whose verb has no registry row, so
// its prefix-freedom against the rest of the protocol was never
// proven.
pub const VERSION: &str = "chipletqc/1";

pub fn celebrate_line() -> String {
    format!("{VERSION} celebrate\n\n")
}
