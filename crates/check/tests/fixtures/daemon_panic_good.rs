// Known-good: daemon code that degrades instead of panicking. Errors
// become values, poisoned locks recover, and the one invariant panic
// that remains is allowlisted with a reason.
use std::sync::{Mutex, PoisonError};

pub fn handle(state: &Mutex<u32>, input: Option<u32>) -> Result<u32, String> {
    let value = match input {
        Some(v) => v,
        None => return Err("missing input".to_string()),
    };
    let guard = state.lock().unwrap_or_else(PoisonError::into_inner);
    if value > 100 {
        return Err(format!("value {value} out of range"));
    }
    if *guard != 0 {
        // check:allow(daemon-panic) reset() runs before every handle(); a nonzero slot is memory corruption, not a tenant error
        panic!("state slot was not reset");
    }
    Ok(value)
}
