//! Bad fixture: chunk sites fed by a bare literal and by a derived
//! local — both drift from the store-wide chunk size the
//! merge-on-read contract assumes, so a reader merging ranges sees
//! torn chunk boundaries.

pub const CHUNK_TRIALS: usize = 512;

fn chunk_cover(total: usize, chunk: usize) -> usize {
    total.div_ceil(chunk)
}

pub fn chunks_for(total: usize) -> usize {
    chunk_cover(total, 512)
}

pub fn chunks_custom(total: usize, budget: usize) -> usize {
    let chunk = budget.max(1);
    chunk_cover(total, chunk)
}
