// Known-good: every emitted frame head uses a verb with a registry
// row, so the corpus-wide prefix-freedom proof covers it.
pub const VERSION: &str = "chipletqc/1";

pub fn cancel_line() -> String {
    format!("{VERSION} cancel\n\n")
}

pub fn shutdown_line() -> String {
    format!("{VERSION} shutdown\n\n")
}
