// Known-good: ordered collections everywhere iteration can happen,
// plus one allowlisted hash import whose pragma carries a reason.
use std::collections::BTreeMap;
// check:allow(unordered-iteration) re-exported for callers off the determinism surface
pub use std::collections::HashSet;

pub fn histogram(names: &[String]) -> Vec<(String, usize)> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for name in names {
        *counts.entry(name.clone()).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
