// Known-bad: ambient clock reads outside crates/obs with no
// annotation. Wall-clock deltas leaking into results break
// run-to-run byte identity.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let started = Instant::now();
    let _ = started.elapsed();
    match SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
