// Known-good: clock reads are either absent from result-bearing code
// or annotated as timeout/measurement sites that never reach bytes.
use std::time::{Duration, Instant};

pub fn wait_budget(budget: Duration) -> bool {
    // check:allow(clock-discipline) timeout arming only; the deadline gates retries and never reaches report bytes
    let deadline = Instant::now() + budget;
    // check:allow(clock-discipline) timeout probe paired with the arming site above
    Instant::now() < deadline
}
