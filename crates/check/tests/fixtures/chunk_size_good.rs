//! Good fixture: every chunking site is fed the `CHUNK_TRIALS`
//! constant itself, so every producer chunks identically and merged
//! reads line up.

pub const CHUNK_TRIALS: usize = 512;

fn chunk_cover(total: usize, chunk: usize) -> usize {
    total.div_ceil(chunk)
}

pub fn chunks_for(total: usize) -> usize {
    chunk_cover(total, CHUNK_TRIALS)
}
