// Known-bad: a second lock acquired while the first guard is still
// live. Two call sites taking these in opposite orders deadlock.
use std::sync::Mutex;

pub struct Pair {
    left: Mutex<u64>,
    right: Mutex<u64>,
}

impl Pair {
    pub fn total(&self) -> u64 {
        let left = self.left.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let right = self.right.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *left + *right
    }
}
