//! Good fixture: the same two locks, acquired in one consistent
//! order (state, then sched) at every site — including one function
//! that holds both directly. The classed pair needs no nested-lock
//! pragma: a consistent order keeps the whole-workspace lock-order
//! graph acyclic, and that is the whole annotation.

use std::sync::{Mutex, PoisonError};

pub struct Pool {
    state: Mutex<Vec<u64>>,
    sched: Mutex<Vec<u64>>,
}

impl Pool {
    pub fn enqueue(&self, task: u64) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.push(task);
        let mut sched = self.sched.lock().unwrap_or_else(PoisonError::into_inner);
        sched.push(task);
    }

    pub fn drain(&self) -> u64 {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let task = state.pop().unwrap_or_default();
        drop(state);
        self.note_sched(task);
        task
    }

    fn note_sched(&self, task: u64) {
        let mut sched = self.sched.lock().unwrap_or_else(PoisonError::into_inner);
        sched.retain(|&t| t != task);
    }
}
