// Known-bad: panicking constructs in daemon code. Any one of these
// takes the warm daemon down for every connected tenant.
use std::sync::Mutex;

pub fn handle(state: &Mutex<u32>, input: Option<u32>) -> u32 {
    let value = input.unwrap();
    let guard = state.lock().expect("poisoned");
    if value > 100 {
        panic!("value {value} out of range");
    }
    match *guard {
        0 => value,
        _ => unreachable!("state is always reset to zero"),
    }
}

#[cfg(test)]
mod tests {
    // Unwraps in test code are exempt; this must produce no finding.
    #[test]
    fn unwrap_is_fine_here() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
