//! Good fixture: both `Vec` axes of `Sweep` appear in every axis
//! handler — counted, validated, expanded, printed, and parsed.

pub struct Sweep {
    pub grids: Vec<u32>,
    pub seeds: Vec<u64>,
}

impl Sweep {
    pub fn expanded_len(&self) -> usize {
        self.grids.len().max(1) * self.seeds.len().max(1)
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.grids.is_empty() && self.seeds.is_empty() {
            return Err("empty sweep".to_string());
        }
        Ok(())
    }

    pub fn expand(&self) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        for &grid in &self.grids {
            for &seed in &self.seeds {
                out.push((grid, seed));
            }
        }
        out
    }

    pub fn to_text(&self) -> String {
        format!("grids={:?} seeds={:?}", self.grids, self.seeds)
    }

    pub fn parse(text: &str) -> Option<Sweep> {
        let mut grids = Vec::new();
        let mut seeds = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("grids=") {
                grids.push(rest.len() as u32);
            }
            if let Some(rest) = line.strip_prefix("seeds=") {
                seeds.push(rest.len() as u64);
            }
        }
        Some(Sweep { grids, seeds })
    }
}
