//! The annotated device model.
//!
//! A [`Device`] combines a [`CouplingGraph`] with the design information
//! the paper's models consume: the three-frequency pattern class of every
//! qubit, the cross-resonance control orientation of every edge, whether
//! each edge is on-chip or an inter-chip (flip-chip) link, and which chip
//! each qubit belongs to.

use crate::graph::{CouplingGraph, EdgeId};
use crate::qubit::{ChipIndex, FrequencyClass, QubitId};

/// Whether a coupling is realized on one die or across dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Resonator coupling between qubits on the same die.
    OnChip,
    /// Flip-chip link through the carrier interposer between qubits on
    /// different chiplets (the yellow links of Fig. 5).
    InterChip,
}

impl EdgeKind {
    /// Whether this is an inter-chip link.
    pub fn is_inter_chip(self) -> bool {
        self == EdgeKind::InterChip
    }
}

impl std::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeKind::OnChip => write!(f, "on-chip"),
            EdgeKind::InterChip => write!(f, "inter-chip"),
        }
    }
}

/// One two-qubit coupling with its CR orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// The edge id within the device's coupling graph.
    pub id: EdgeId,
    /// First endpoint (insertion order; use [`Edge::control`]/[`Edge::target`]
    /// for the CR roles).
    pub a: QubitId,
    /// Second endpoint.
    pub b: QubitId,
    /// On-chip or inter-chip.
    pub kind: EdgeKind,
    /// The CR control qubit (always the `F2`-class endpoint in the
    /// heavy-hex plan).
    pub control: QubitId,
}

impl Edge {
    /// The CR target qubit (the endpoint that is not the control).
    pub fn target(&self) -> QubitId {
        if self.control == self.a {
            self.b
        } else {
            self.a
        }
    }

    /// Whether `q` is an endpoint of this edge.
    pub fn touches(&self, q: QubitId) -> bool {
        self.a == q || self.b == q
    }

    /// The endpoint that is not `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not an endpoint.
    pub fn other(&self, q: QubitId) -> QubitId {
        if q == self.a {
            self.b
        } else if q == self.b {
            self.a
        } else {
            panic!("{q} is not an endpoint of edge {:?}", self.id)
        }
    }
}

/// A complete device: coupling graph + frequency classes + CR
/// orientations + chip membership.
///
/// Construct devices through [`crate::family`], [`crate::mcm`], or
/// [`crate::ibm`]; the [`DeviceBuilder`] is exposed for custom
/// topologies and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    name: String,
    graph: CouplingGraph,
    classes: Vec<FrequencyClass>,
    chips: Vec<ChipIndex>,
    edges: Vec<Edge>,
    num_chips: usize,
    targets_of: Vec<Vec<QubitId>>,
}

impl Device {
    /// The device name (e.g. `"heavy-hex-180 (3x3 of chiplet-20)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.graph.num_qubits()
    }

    /// The number of chips (1 for monolithic devices).
    pub fn num_chips(&self) -> usize {
        self.num_chips
    }

    /// The underlying coupling graph.
    pub fn graph(&self) -> &CouplingGraph {
        &self.graph
    }

    /// The frequency class of `q`.
    pub fn class(&self, q: QubitId) -> FrequencyClass {
        self.classes[q.index()]
    }

    /// The chip that `q` lives on.
    pub fn chip(&self, q: QubitId) -> ChipIndex {
        self.chips[q.index()]
    }

    /// All edges with their annotations.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge between `a` and `b`, if coupled.
    pub fn edge_between(&self, a: QubitId, b: QubitId) -> Option<&Edge> {
        self.graph.edge_between(a, b).map(|id| &self.edges[id.index()])
    }

    /// The edge with the given id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// The qubits that `control` drives (its CR targets).
    ///
    /// Collision criteria 5–7 of Table I quantify over pairs of targets
    /// that share a control; this accessor is the hot path of the
    /// collision checker.
    pub fn targets_of(&self, control: QubitId) -> &[QubitId] {
        &self.targets_of[control.index()]
    }

    /// Iterator over all qubit ids.
    pub fn qubits(&self) -> impl Iterator<Item = QubitId> {
        (0..self.graph.num_qubits() as u32).map(QubitId)
    }

    /// The inter-chip edges only.
    pub fn inter_chip_edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(|e| e.kind.is_inter_chip())
    }

    /// The distinct qubits incident to at least one inter-chip link.
    ///
    /// This is the `L` of the paper's post-assembly yield model: every
    /// linked qubit needs 25 successful C4 bump bonds.
    pub fn link_qubits(&self) -> Vec<QubitId> {
        let mut seen = vec![false; self.num_qubits()];
        for e in self.inter_chip_edges() {
            seen[e.a.index()] = true;
            seen[e.b.index()] = true;
        }
        (0..self.num_qubits()).filter(|i| seen[*i]).map(|i| QubitId(i as u32)).collect()
    }

    /// Counts qubits per frequency class, indexed by
    /// [`FrequencyClass::steps`].
    pub fn class_counts(&self) -> [usize; 3] {
        let mut counts = [0; 3];
        for c in &self.classes {
            counts[c.steps() as usize] += 1;
        }
        counts
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} qubits, {} edges ({} inter-chip), {} chips",
            self.name,
            self.num_qubits(),
            self.edges.len(),
            self.inter_chip_edges().count(),
            self.num_chips
        )
    }
}

/// Incremental builder for [`Device`].
///
/// ```
/// use chipletqc_topology::device::{DeviceBuilder, EdgeKind};
/// use chipletqc_topology::qubit::{ChipIndex, FrequencyClass, QubitId};
///
/// let mut b = DeviceBuilder::new("demo");
/// let q0 = b.add_qubit(FrequencyClass::F0, ChipIndex(0));
/// let q1 = b.add_qubit(FrequencyClass::F2, ChipIndex(0));
/// b.add_edge(q0, q1, EdgeKind::OnChip);
/// let device = b.build();
/// assert_eq!(device.edges()[0].control, q1); // F2 controls
/// ```
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    name: String,
    classes: Vec<FrequencyClass>,
    chips: Vec<ChipIndex>,
    edges: Vec<(QubitId, QubitId, EdgeKind, Option<QubitId>)>,
}

impl DeviceBuilder {
    /// Starts a device with the given name.
    pub fn new(name: impl Into<String>) -> DeviceBuilder {
        DeviceBuilder {
            name: name.into(),
            classes: Vec::new(),
            chips: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a qubit and returns its id.
    pub fn add_qubit(&mut self, class: FrequencyClass, chip: ChipIndex) -> QubitId {
        let id = QubitId(self.classes.len() as u32);
        self.classes.push(class);
        self.chips.push(chip);
        id
    }

    /// Adds an edge; the control is inferred as the higher-class
    /// endpoint (`F2` in a well-formed heavy-hex plan).
    ///
    /// # Panics
    ///
    /// Panics if both endpoints have the same frequency class — such an
    /// edge has no well-defined CR direction under the heavy-hex plan;
    /// use [`DeviceBuilder::add_edge_with_control`] for exotic designs.
    pub fn add_edge(&mut self, a: QubitId, b: QubitId, kind: EdgeKind) {
        let (ca, cb) = (self.classes[a.index()], self.classes[b.index()]);
        assert_ne!(
            ca, cb,
            "edge {a}-{b} joins two {ca} qubits; specify the control explicitly"
        );
        let control = if ca > cb { a } else { b };
        self.edges.push((a, b, kind, Some(control)));
    }

    /// Adds an edge with an explicit control endpoint.
    ///
    /// # Panics
    ///
    /// Panics (on [`DeviceBuilder::build`]) if `control` is not an
    /// endpoint.
    pub fn add_edge_with_control(
        &mut self,
        a: QubitId,
        b: QubitId,
        kind: EdgeKind,
        control: QubitId,
    ) {
        self.edges.push((a, b, kind, Some(control)));
    }

    /// The number of qubits added so far.
    pub fn num_qubits(&self) -> usize {
        self.classes.len()
    }

    /// Finalizes the device.
    ///
    /// # Panics
    ///
    /// Panics on duplicate edges, out-of-range endpoints, or a control
    /// that is not an endpoint of its edge.
    pub fn build(self) -> Device {
        let mut graph = CouplingGraph::with_qubits(self.classes.len());
        let mut edges = Vec::with_capacity(self.edges.len());
        let mut targets_of: Vec<Vec<QubitId>> = vec![Vec::new(); self.classes.len()];
        let num_chips = self.chips.iter().map(|c| c.index() + 1).max().unwrap_or(1);
        for (a, b, kind, control) in self.edges {
            let id = graph.add_edge(a, b);
            let control = control.expect("control always set by builder methods");
            assert!(
                control == a || control == b,
                "control {control} is not an endpoint of {a}-{b}"
            );
            let edge = Edge { id, a, b, kind, control };
            targets_of[control.index()].push(edge.target());
            edges.push(edge);
        }
        Device {
            name: self.name,
            graph,
            classes: self.classes,
            chips: self.chips,
            edges,
            num_chips,
            targets_of,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_device() -> Device {
        // F0 - F2 - F1 path plus an F2 spur on the F0.
        let mut b = DeviceBuilder::new("tiny");
        let f0 = b.add_qubit(FrequencyClass::F0, ChipIndex(0));
        let f2 = b.add_qubit(FrequencyClass::F2, ChipIndex(0));
        let f1 = b.add_qubit(FrequencyClass::F1, ChipIndex(1));
        b.add_edge(f0, f2, EdgeKind::OnChip);
        b.add_edge(f2, f1, EdgeKind::InterChip);
        b.build()
    }

    #[test]
    fn control_is_higher_class() {
        let d = tiny_device();
        assert_eq!(d.edges()[0].control, QubitId(1));
        assert_eq!(d.edges()[0].target(), QubitId(0));
        assert_eq!(d.edges()[1].control, QubitId(1));
        assert_eq!(d.edges()[1].target(), QubitId(2));
    }

    #[test]
    fn targets_of_collects_both() {
        let d = tiny_device();
        assert_eq!(d.targets_of(QubitId(1)), &[QubitId(0), QubitId(2)]);
        assert!(d.targets_of(QubitId(0)).is_empty());
    }

    #[test]
    fn chips_and_links() {
        let d = tiny_device();
        assert_eq!(d.num_chips(), 2);
        assert_eq!(d.inter_chip_edges().count(), 1);
        assert_eq!(d.link_qubits(), vec![QubitId(1), QubitId(2)]);
        assert_eq!(d.chip(QubitId(2)), ChipIndex(1));
    }

    #[test]
    fn class_counts_sum_to_qubits() {
        let d = tiny_device();
        assert_eq!(d.class_counts(), [1, 1, 1]);
    }

    #[test]
    fn edge_accessors() {
        let d = tiny_device();
        let e = d.edge_between(QubitId(0), QubitId(1)).unwrap();
        assert!(e.touches(QubitId(0)));
        assert!(!e.touches(QubitId(2)));
        assert_eq!(e.other(QubitId(0)), QubitId(1));
        assert_eq!(d.edge(e.id).id, e.id);
        assert!(d.edge_between(QubitId(0), QubitId(2)).is_none());
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let d = tiny_device();
        let e = d.edge_between(QubitId(0), QubitId(1)).unwrap();
        let _ = e.other(QubitId(2));
    }

    #[test]
    #[should_panic(expected = "specify the control")]
    fn same_class_edge_needs_explicit_control() {
        let mut b = DeviceBuilder::new("bad");
        let x = b.add_qubit(FrequencyClass::F0, ChipIndex(0));
        let y = b.add_qubit(FrequencyClass::F0, ChipIndex(0));
        b.add_edge(x, y, EdgeKind::OnChip);
    }

    #[test]
    fn explicit_control_accepted() {
        let mut b = DeviceBuilder::new("explicit");
        let x = b.add_qubit(FrequencyClass::F0, ChipIndex(0));
        let y = b.add_qubit(FrequencyClass::F0, ChipIndex(0));
        b.add_edge_with_control(x, y, EdgeKind::OnChip, x);
        let d = b.build();
        assert_eq!(d.edges()[0].control, x);
    }

    #[test]
    fn display_summarizes() {
        let d = tiny_device();
        let s = d.to_string();
        assert!(s.contains("3 qubits"));
        assert!(s.contains("2 chips"));
        assert!(s.contains("1 inter-chip"));
    }
}
