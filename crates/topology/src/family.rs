//! The heavy-hex chiplet family `Q = 5·D·m`.
//!
//! Reconstructed from the paper's chiplet descriptions (see DESIGN.md §3):
//! a chiplet has `D` dense rows of `4m` qubit sites — `4m − 1` pattern
//! columns plus one F2 *right link qubit* — `D − 1` sparse connector rows
//! between them, and one row of F2 *bottom link connectors*, for
//! `5·D·m` qubits total. The paper's own 20-qubit (one complete heavy-hex
//! honeycomb) and 60-qubit (+2 dense rows of +4 qubits, +2 sparse rows of
//! +1 qubit) chiplets pin down the family uniquely.
//!
//! Monolithic devices reuse the identical layout as a single die, so a
//! monolithic device and an MCM of the same total qubit count are
//! structurally comparable (the paper's 100-qubit example: one 100-qubit
//! die vs. a 2×5 module of 10-qubit chiplets).

use crate::device::{Device, DeviceBuilder};
use crate::qubit::ChipIndex;
use crate::rowlayout::{connector_cols, RowLayout};

/// Error constructing a device spec from a qubit count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecError {
    /// The qubit count is not expressible as `5·D·m` (monolithic) with
    /// the required constraints.
    UnsupportedSize {
        /// The requested qubit count.
        qubits: usize,
    },
    /// A dimension was zero.
    ZeroDimension,
    /// Chiplets require an even number of dense rows so that the
    /// three-frequency pattern continues across vertical chip
    /// boundaries.
    OddChipletRows {
        /// The requested dense-row count.
        dense_rows: usize,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnsupportedSize { qubits } => {
                write!(f, "no heavy-hex family member with {qubits} qubits (sizes are 5*D*m)")
            }
            SpecError::ZeroDimension => write!(f, "device dimensions must be nonzero"),
            SpecError::OddChipletRows { dense_rows } => {
                write!(f, "chiplets need an even dense-row count, got {dense_rows}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// The paper's nine canonical chiplet sizes with their `(D, m)` shapes.
///
/// 20 and 60 are fixed by the paper's text; the rest follow the same
/// alternate-growth progression (grow rows, then widen).
const CATALOG: [(usize, usize, usize); 9] = [
    (10, 2, 1),
    (20, 2, 2),
    (40, 4, 2),
    (60, 4, 3),
    (90, 6, 3),
    (120, 8, 3),
    (160, 8, 4),
    (200, 10, 4),
    (250, 10, 5),
];

/// A chiplet design: `D` (even) dense rows, width parameter `m`.
///
/// # Example
///
/// ```
/// use chipletqc_topology::family::ChipletSpec;
///
/// let c = ChipletSpec::with_qubits(60).unwrap();
/// assert_eq!(c.dense_rows(), 4);
/// assert_eq!(c.pattern_width(), 11);
/// assert_eq!(c.num_qubits(), 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChipletSpec {
    dense_rows: usize,
    m: usize,
}

impl ChipletSpec {
    /// Creates a chiplet with `dense_rows` (even, ≥ 2) dense rows and
    /// width parameter `m ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::ZeroDimension`] or
    /// [`SpecError::OddChipletRows`] on invalid dimensions.
    pub fn new(dense_rows: usize, m: usize) -> Result<ChipletSpec, SpecError> {
        if dense_rows == 0 || m == 0 {
            return Err(SpecError::ZeroDimension);
        }
        if !dense_rows.is_multiple_of(2) {
            return Err(SpecError::OddChipletRows { dense_rows });
        }
        Ok(ChipletSpec { dense_rows, m })
    }

    /// The canonical chiplet for a qubit count.
    ///
    /// Paper sizes (10–250) use the catalog shapes; other multiples of
    /// ten use the most-square even-row factorization.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnsupportedSize`] if `qubits` is not `5·D·m`
    /// for any even `D`.
    pub fn with_qubits(qubits: usize) -> Result<ChipletSpec, SpecError> {
        if let Some((_, d, m)) = CATALOG.iter().find(|(q, _, _)| *q == qubits) {
            return ChipletSpec::new(*d, *m);
        }
        if qubits == 0 || !qubits.is_multiple_of(10) {
            return Err(SpecError::UnsupportedSize { qubits });
        }
        let dm = qubits / 5;
        best_factorization(dm, true)
            .map(|(d, m)| ChipletSpec { dense_rows: d, m })
            .ok_or(SpecError::UnsupportedSize { qubits })
    }

    /// The paper's nine chiplet designs, ascending by size.
    pub fn catalog() -> Vec<ChipletSpec> {
        CATALOG.iter().map(|(_, d, m)| ChipletSpec { dense_rows: *d, m: *m }).collect()
    }

    /// The number of dense rows `D`.
    pub fn dense_rows(&self) -> usize {
        self.dense_rows
    }

    /// The width parameter `m`.
    pub fn width_param(&self) -> usize {
        self.m
    }

    /// The pattern width `W = 4m − 1` (columns before the right link
    /// qubit).
    pub fn pattern_width(&self) -> usize {
        4 * self.m - 1
    }

    /// Total qubits `5·D·m` (including the link qubits).
    pub fn num_qubits(&self) -> usize {
        5 * self.dense_rows * self.m
    }

    /// Builds this chiplet as a standalone single-chip [`Device`].
    pub fn build(&self) -> Device {
        let mut builder = DeviceBuilder::new(format!("chiplet-{}", self.num_qubits()));
        self.layout().instantiate(&mut builder, ChipIndex(0));
        builder.build()
    }

    /// The row layout of this chiplet (with bottom link gap).
    pub(crate) fn layout(&self) -> RowLayout {
        let end = 4 * self.m as u32 - 1;
        let layout = RowLayout {
            rows: vec![(0, end); self.dense_rows],
            gaps: (0..self.dense_rows).map(|g| connector_cols(g, 0, end)).collect(),
        };
        layout.validate();
        debug_assert_eq!(layout.num_qubits(), self.num_qubits());
        layout
    }
}

impl std::fmt::Display for ChipletSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chiplet-{} ({}x{}m)", self.num_qubits(), self.dense_rows, self.m)
    }
}

/// A monolithic device design from the same heavy-hex family.
///
/// # Example
///
/// ```
/// use chipletqc_topology::family::MonolithicSpec;
///
/// let mono = MonolithicSpec::with_qubits(100).unwrap();
/// let device = mono.build();
/// assert_eq!(device.num_qubits(), 100);
/// assert_eq!(device.num_chips(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MonolithicSpec {
    dense_rows: usize,
    m: usize,
}

impl MonolithicSpec {
    /// Creates a monolithic spec with `dense_rows ≥ 1` dense rows and
    /// width parameter `m ≥ 1` (row parity is unconstrained on a single
    /// die).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::ZeroDimension`] on zero dimensions.
    pub fn new(dense_rows: usize, m: usize) -> Result<MonolithicSpec, SpecError> {
        if dense_rows == 0 || m == 0 {
            return Err(SpecError::ZeroDimension);
        }
        Ok(MonolithicSpec { dense_rows, m })
    }

    /// The most-square monolithic device with `qubits` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnsupportedSize`] unless `qubits` is a
    /// positive multiple of 5.
    pub fn with_qubits(qubits: usize) -> Result<MonolithicSpec, SpecError> {
        if qubits == 0 || !qubits.is_multiple_of(5) {
            return Err(SpecError::UnsupportedSize { qubits });
        }
        best_factorization(qubits / 5, false)
            .map(|(d, m)| MonolithicSpec { dense_rows: d, m })
            .ok_or(SpecError::UnsupportedSize { qubits })
    }

    /// The number of dense rows.
    pub fn dense_rows(&self) -> usize {
        self.dense_rows
    }

    /// The width parameter `m`.
    pub fn width_param(&self) -> usize {
        self.m
    }

    /// Total qubits `5·D·m`.
    pub fn num_qubits(&self) -> usize {
        5 * self.dense_rows * self.m
    }

    /// Builds the monolithic [`Device`].
    pub fn build(&self) -> Device {
        let mut builder = DeviceBuilder::new(format!("mono-{}", self.num_qubits()));
        let end = 4 * self.m as u32 - 1;
        let layout = RowLayout {
            rows: vec![(0, end); self.dense_rows],
            gaps: (0..self.dense_rows).map(|g| connector_cols(g, 0, end)).collect(),
        };
        layout.validate();
        layout.instantiate(&mut builder, ChipIndex(0));
        builder.build()
    }
}

impl std::fmt::Display for MonolithicSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mono-{} ({}x{}m)", self.num_qubits(), self.dense_rows, self.m)
    }
}

/// Picks `(D, m)` with `D·m = dm` minimizing the physical aspect
/// imbalance `|4m − (2D − 1)|`; ties prefer the taller (larger `D`)
/// shape. `even_rows` restricts to even `D` (chiplets).
fn best_factorization(dm: usize, even_rows: bool) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize, i64)> = None;
    for d in 1..=dm {
        if !dm.is_multiple_of(d) {
            continue;
        }
        if even_rows && d % 2 != 0 {
            continue;
        }
        let m = dm / d;
        let imbalance = (4 * m as i64 - (2 * d as i64 - 1)).abs();
        let better = match best {
            None => true,
            Some((bd, _, bi)) => imbalance < bi || (imbalance == bi && d > bd),
        };
        if better {
            best = Some((d, m, imbalance));
        }
    }
    best.map(|(d, m, _)| (d, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::FrequencyClass;

    #[test]
    fn catalog_sizes_match_paper() {
        let sizes: Vec<usize> =
            ChipletSpec::catalog().iter().map(ChipletSpec::num_qubits).collect();
        assert_eq!(sizes, vec![10, 20, 40, 60, 90, 120, 160, 200, 250]);
    }

    #[test]
    fn catalog_builds_exact_sizes() {
        for spec in ChipletSpec::catalog() {
            let device = spec.build();
            assert_eq!(device.num_qubits(), spec.num_qubits(), "{spec}");
            assert!(device.graph().is_connected(), "{spec} disconnected");
        }
    }

    #[test]
    fn paper_20q_and_60q_shapes() {
        let c20 = ChipletSpec::with_qubits(20).unwrap();
        assert_eq!((c20.dense_rows(), c20.pattern_width()), (2, 7));
        let c60 = ChipletSpec::with_qubits(60).unwrap();
        assert_eq!((c60.dense_rows(), c60.pattern_width()), (4, 11));
        // The paper: 60q = 20q + 2 dense rows; dense rows hold 4 more
        // qubits each (8 -> 12 including the link qubit), sparse rows
        // hold 1 more qubit each (2 -> 3).
        assert_eq!(c60.dense_rows() - c20.dense_rows(), 2);
        assert_eq!((c60.pattern_width() + 1) - (c20.pattern_width() + 1), 4);
        assert_eq!(c60.width_param() - c20.width_param(), 1);
    }

    #[test]
    fn chiplet_rejects_bad_dims() {
        assert_eq!(ChipletSpec::new(0, 1).unwrap_err(), SpecError::ZeroDimension);
        assert_eq!(
            ChipletSpec::new(3, 1).unwrap_err(),
            SpecError::OddChipletRows { dense_rows: 3 }
        );
        assert!(ChipletSpec::with_qubits(15).is_err());
        assert!(ChipletSpec::with_qubits(0).is_err());
        assert!(ChipletSpec::with_qubits(12).is_err());
    }

    #[test]
    fn noncatalog_chiplet_sizes_work() {
        let c = ChipletSpec::with_qubits(30).unwrap();
        assert_eq!(c.num_qubits(), 30);
        assert_eq!(c.dense_rows() % 2, 0);
        assert_eq!(c.build().num_qubits(), 30);
    }

    #[test]
    fn monolithic_any_multiple_of_five() {
        for q in [5, 45, 100, 180, 495, 1000] {
            let mono = MonolithicSpec::with_qubits(q).unwrap();
            assert_eq!(mono.num_qubits(), q);
            let d = mono.build();
            assert_eq!(d.num_qubits(), q);
            assert_eq!(d.num_chips(), 1);
            assert!(d.graph().is_connected(), "mono-{q} disconnected");
        }
        assert!(MonolithicSpec::with_qubits(7).is_err());
    }

    #[test]
    fn monolithic_shape_is_squarish() {
        let mono = MonolithicSpec::with_qubits(100).unwrap();
        // 100/5 = 20 = D*m; |4m - (2D-1)| minimized at (5, 4).
        assert_eq!((mono.dense_rows(), mono.width_param()), (5, 4));
    }

    #[test]
    fn no_edge_joins_two_f2_qubits() {
        let device = ChipletSpec::with_qubits(90).unwrap().build();
        for e in device.edges() {
            let (ca, cb) = (device.class(e.a), device.class(e.b));
            assert!(
                !(ca == FrequencyClass::F2 && cb == FrequencyClass::F2),
                "F2-F2 edge {}-{}",
                e.a,
                e.b
            );
            assert_eq!(device.class(e.control), FrequencyClass::F2);
        }
    }

    #[test]
    fn class_balance_is_sane() {
        // In each dense row half the sites are F2; all connectors are F2,
        // so F2 is always the majority class.
        let device = ChipletSpec::with_qubits(250).unwrap().build();
        let [f0, f1, f2] = device.class_counts();
        assert_eq!(f0 + f1 + f2, 250);
        assert!(f2 > f0 && f2 > f1);
        assert_eq!(f0, f1, "F0/F1 should balance on even-row chiplets");
    }

    #[test]
    fn display_forms() {
        let c = ChipletSpec::with_qubits(20).unwrap();
        assert!(c.to_string().contains("chiplet-20"));
        let m = MonolithicSpec::with_qubits(100).unwrap();
        assert!(m.to_string().contains("mono-100"));
    }
}
