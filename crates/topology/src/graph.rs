//! Undirected coupling graphs.
//!
//! A [`CouplingGraph`] is the raw qubit-connectivity skeleton of a
//! device: which physical qubit pairs support two-qubit gates. The
//! annotated device model (frequency classes, control orientation, chip
//! membership) lives in [`crate::device`].

use std::collections::VecDeque;

use crate::qubit::QubitId;

/// Identifies one undirected edge within a [`CouplingGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An undirected multigraph-free coupling graph over `n` qubits.
///
/// # Example
///
/// ```
/// use chipletqc_topology::graph::CouplingGraph;
/// use chipletqc_topology::qubit::QubitId;
///
/// let mut g = CouplingGraph::with_qubits(3);
/// g.add_edge(QubitId(0), QubitId(1));
/// g.add_edge(QubitId(1), QubitId(2));
/// assert_eq!(g.degree(QubitId(1)), 2);
/// assert_eq!(g.distance(QubitId(0), QubitId(2)), Some(2));
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CouplingGraph {
    adjacency: Vec<Vec<(QubitId, EdgeId)>>,
    endpoints: Vec<(QubitId, QubitId)>,
}

impl CouplingGraph {
    /// Creates a graph with `n` isolated qubits.
    pub fn with_qubits(n: usize) -> CouplingGraph {
        CouplingGraph { adjacency: vec![Vec::new(); n], endpoints: Vec::new() }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.adjacency.len()
    }

    /// The number of edges.
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Adds an undirected edge and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, if `a == b` (transmons
    /// do not self-couple), or if the edge already exists.
    pub fn add_edge(&mut self, a: QubitId, b: QubitId) -> EdgeId {
        assert!(a.index() < self.num_qubits(), "qubit {a} out of range");
        assert!(b.index() < self.num_qubits(), "qubit {b} out of range");
        assert_ne!(a, b, "self-loop on {a}");
        assert!(self.edge_between(a, b).is_none(), "duplicate edge {a}-{b}");
        let id = EdgeId(self.endpoints.len() as u32);
        self.endpoints.push((a, b));
        self.adjacency[a.index()].push((b, id));
        self.adjacency[b.index()].push((a, id));
        id
    }

    /// The `(a, b)` endpoints of `edge` in insertion order.
    pub fn endpoints(&self, edge: EdgeId) -> (QubitId, QubitId) {
        self.endpoints[edge.index()]
    }

    /// The neighbors of `q` with the connecting edge ids.
    pub fn neighbors(&self, q: QubitId) -> &[(QubitId, EdgeId)] {
        &self.adjacency[q.index()]
    }

    /// The degree of `q`.
    pub fn degree(&self, q: QubitId) -> usize {
        self.adjacency[q.index()].len()
    }

    /// The edge between `a` and `b`, if present.
    pub fn edge_between(&self, a: QubitId, b: QubitId) -> Option<EdgeId> {
        self.adjacency[a.index()].iter().find(|(n, _)| *n == b).map(|(_, e)| *e)
    }

    /// Iterator over all edges as `(EdgeId, a, b)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, QubitId, QubitId)> + '_ {
        self.endpoints.iter().enumerate().map(|(i, (a, b))| (EdgeId(i as u32), *a, *b))
    }

    /// BFS hop distances from `from` to every qubit.
    ///
    /// Unreachable qubits get `u32::MAX`.
    pub fn bfs_distances(&self, from: QubitId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_qubits()];
        let mut queue = VecDeque::new();
        dist[from.index()] = 0;
        queue.push_back(from);
        while let Some(q) = queue.pop_front() {
            let d = dist[q.index()];
            for &(n, _) in &self.adjacency[q.index()] {
                if dist[n.index()] == u32::MAX {
                    dist[n.index()] = d + 1;
                    queue.push_back(n);
                }
            }
        }
        dist
    }

    /// The hop distance between `a` and `b`, or `None` if disconnected.
    pub fn distance(&self, a: QubitId, b: QubitId) -> Option<u32> {
        let d = self.bfs_distances(a)[b.index()];
        (d != u32::MAX).then_some(d)
    }

    /// The full all-pairs hop-distance matrix (row-major,
    /// `matrix[a][b]`). `u32::MAX` marks disconnected pairs.
    ///
    /// Cost is `O(V·E)`; for the paper's largest 500-qubit systems this
    /// is well under a millisecond and is computed once per transpile.
    pub fn distance_matrix(&self) -> Vec<Vec<u32>> {
        (0..self.num_qubits()).map(|q| self.bfs_distances(QubitId(q as u32))).collect()
    }

    /// Whether every qubit can reach every other qubit.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits() == 0 {
            return true;
        }
        self.bfs_distances(QubitId(0)).iter().all(|d| *d != u32::MAX)
    }

    /// The graph diameter (longest shortest path), or `None` if the
    /// graph is disconnected or empty.
    ///
    /// The paper prefers square MCM dimensions precisely "to reduce
    /// topology graph diameter" (Section VII-B); [`crate::evalset`] uses
    /// this to verify that preference quantitatively.
    pub fn diameter(&self) -> Option<u32> {
        if self.num_qubits() == 0 {
            return None;
        }
        let mut best = 0;
        for q in 0..self.num_qubits() {
            let dists = self.bfs_distances(QubitId(q as u32));
            for d in dists {
                if d == u32::MAX {
                    return None;
                }
                best = best.max(d);
            }
        }
        Some(best)
    }

    /// The connected components, each a sorted list of qubits.
    pub fn components(&self) -> Vec<Vec<QubitId>> {
        let mut seen = vec![false; self.num_qubits()];
        let mut components = Vec::new();
        for start in 0..self.num_qubits() {
            if seen[start] {
                continue;
            }
            let mut component = Vec::new();
            let mut queue = VecDeque::new();
            seen[start] = true;
            queue.push_back(QubitId(start as u32));
            while let Some(q) = queue.pop_front() {
                component.push(q);
                for &(n, _) in &self.adjacency[q.index()] {
                    if !seen[n.index()] {
                        seen[n.index()] = true;
                        queue.push_back(n);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// A shortest path from `a` to `b` (inclusive of both), or `None` if
    /// disconnected. Used by the router's SWAP-path fallback.
    pub fn shortest_path(&self, a: QubitId, b: QubitId) -> Option<Vec<QubitId>> {
        if a == b {
            return Some(vec![a]);
        }
        let mut parent: Vec<Option<QubitId>> = vec![None; self.num_qubits()];
        let mut queue = VecDeque::new();
        parent[a.index()] = Some(a);
        queue.push_back(a);
        while let Some(q) = queue.pop_front() {
            for &(n, _) in &self.adjacency[q.index()] {
                if parent[n.index()].is_none() {
                    parent[n.index()] = Some(q);
                    if n == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while cur != a {
                            cur = parent[cur.index()].unwrap();
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(n);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> CouplingGraph {
        let mut g = CouplingGraph::with_qubits(n);
        for i in 0..n - 1 {
            g.add_edge(QubitId(i as u32), QubitId(i as u32 + 1));
        }
        g
    }

    #[test]
    fn empty_graph() {
        let g = CouplingGraph::with_qubits(0);
        assert_eq!(g.num_qubits(), 0);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), None);
        assert!(g.components().is_empty());
    }

    #[test]
    fn path_distances_and_diameter() {
        let g = path_graph(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.distance(QubitId(0), QubitId(4)), Some(4));
        assert_eq!(g.diameter(), Some(4));
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_graph() {
        let mut g = CouplingGraph::with_qubits(4);
        g.add_edge(QubitId(0), QubitId(1));
        g.add_edge(QubitId(2), QubitId(3));
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.distance(QubitId(0), QubitId(3)), None);
        assert_eq!(g.components().len(), 2);
        assert_eq!(g.components()[0], vec![QubitId(0), QubitId(1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edges() {
        let mut g = CouplingGraph::with_qubits(2);
        g.add_edge(QubitId(0), QubitId(1));
        g.add_edge(QubitId(1), QubitId(0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let mut g = CouplingGraph::with_qubits(2);
        g.add_edge(QubitId(1), QubitId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut g = CouplingGraph::with_qubits(2);
        g.add_edge(QubitId(0), QubitId(5));
    }

    #[test]
    fn edge_lookup_is_symmetric() {
        let g = path_graph(3);
        let e = g.edge_between(QubitId(0), QubitId(1)).unwrap();
        assert_eq!(g.edge_between(QubitId(1), QubitId(0)), Some(e));
        assert_eq!(g.edge_between(QubitId(0), QubitId(2)), None);
        assert_eq!(g.endpoints(e), (QubitId(0), QubitId(1)));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn distance_matrix_matches_pairwise() {
        let g = path_graph(6);
        let m = g.distance_matrix();
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(m[a][b], (a as i64 - b as i64).unsigned_abs() as u32);
            }
        }
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let g = path_graph(7);
        let p = g.shortest_path(QubitId(1), QubitId(5)).unwrap();
        assert_eq!(p.first(), Some(&QubitId(1)));
        assert_eq!(p.last(), Some(&QubitId(5)));
        assert_eq!(p.len(), 5);
        for w in p.windows(2) {
            assert!(g.edge_between(w[0], w[1]).is_some());
        }
        assert_eq!(g.shortest_path(QubitId(3), QubitId(3)), Some(vec![QubitId(3)]));
    }

    #[test]
    fn cycle_diameter() {
        let mut g = CouplingGraph::with_qubits(6);
        for i in 0..6 {
            g.add_edge(QubitId(i), QubitId((i + 1) % 6));
        }
        assert_eq!(g.diameter(), Some(3));
    }
}
