//! Internal generic builder for rectangular heavy-hex tiles.
//!
//! Every device in the workspace that is not hand-coded (the chiplet
//! family, monolithic devices, Hummingbird, Eagle) is an instance of a
//! *row layout*: `R` horizontal **dense rows** of qubits joined by
//! vertical **connector** qubits placed every four columns with
//! alternating offsets — exactly the IBM heavy-hex construction.
//!
//! Frequency classes follow the three-frequency pattern of the paper
//! (Section III-B): within a dense row, columns `≡ 1, 3 (mod 4)` are F2;
//! columns `≡ 0 (mod 4)` are F0 on even rows and F1 on odd rows; columns
//! `≡ 2 (mod 4)` are the opposite. All connectors are F2. This makes
//! every F2 qubit a degree-≤2 control whose neighbors are one F0-class
//! and one F1-class qubit, so the pattern survives arbitrary tiling of
//! even-row-count tiles (the chiplets).

use crate::device::{DeviceBuilder, EdgeKind};
use crate::qubit::{ChipIndex, FrequencyClass, QubitId};

/// A rectangular heavy-hex tile description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RowLayout {
    /// `(start_col, end_col)` inclusive, per dense row.
    pub rows: Vec<(u32, u32)>,
    /// Connector columns per gap. Gap `g` sits below dense row `g`.
    /// `gaps.len() == rows.len() − 1` for closed tiles (IBM devices) or
    /// `rows.len()` when the final gap holds bottom link connectors
    /// (chiplets).
    pub gaps: Vec<Vec<u32>>,
}

/// The boundary qubits of one instantiated tile, used by the MCM
/// composer to wire inter-chip links.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChipPorts {
    /// Last-column qubit of each dense row (the F2 right link qubits).
    pub right: Vec<QubitId>,
    /// First-column qubit of each dense row.
    pub left: Vec<QubitId>,
    /// Bottom link connectors as `(col, qubit)`, empty for closed tiles.
    pub bottom: Vec<(u32, QubitId)>,
    /// Top dense row qubits as `(col, qubit)`.
    pub top: Vec<(u32, QubitId)>,
}

/// The heavy-hex frequency class at `(row, col)` of a dense row.
pub(crate) fn dense_class(row: usize, col: u32) -> FrequencyClass {
    match col % 4 {
        1 | 3 => FrequencyClass::F2,
        0 => {
            if row.is_multiple_of(2) {
                FrequencyClass::F0
            } else {
                FrequencyClass::F1
            }
        }
        _ => {
            if row.is_multiple_of(2) {
                FrequencyClass::F1
            } else {
                FrequencyClass::F0
            }
        }
    }
}

/// The standard connector columns for width `0..=end_col` at gap index
/// `g` (offset 0 on even gaps, offset 2 on odd gaps).
pub(crate) fn connector_cols(g: usize, start_col: u32, end_col: u32) -> Vec<u32> {
    let offset = if g.is_multiple_of(2) { 0 } else { 2 };
    (offset..=end_col).step_by(4).filter(|c| *c >= start_col).collect()
}

impl RowLayout {
    /// Validates structural invariants; called by the public spec types.
    ///
    /// # Panics
    ///
    /// Panics if a connector column misses its dense row above, or if a
    /// connector column lands on an F2 dense qubit (which would create an
    /// F2–F2 edge with no CR direction).
    pub fn validate(&self) {
        assert!(!self.rows.is_empty(), "layout needs at least one dense row");
        assert!(
            self.gaps.len() == self.rows.len() - 1 || self.gaps.len() == self.rows.len(),
            "gap count must be rows-1 (closed) or rows (with bottom links)"
        );
        for (g, cols) in self.gaps.iter().enumerate() {
            let (above_start, above_end) = self.rows[g];
            for &c in cols {
                assert!(
                    c >= above_start && c <= above_end,
                    "connector col {c} outside dense row {g}"
                );
                assert_ne!(
                    dense_class(g, c),
                    FrequencyClass::F2,
                    "connector at col {c} would attach to an F2 qubit"
                );
                if let Some(&(below_start, below_end)) = self.rows.get(g + 1) {
                    assert!(
                        c >= below_start && c <= below_end,
                        "connector col {c} outside dense row {}",
                        g + 1
                    );
                }
            }
        }
    }

    /// Total qubits in the tile.
    pub fn num_qubits(&self) -> usize {
        let dense: usize = self.rows.iter().map(|(s, e)| (e - s + 1) as usize).sum();
        let conns: usize = self.gaps.iter().map(Vec::len).sum();
        dense + conns
    }

    /// Adds the tile's qubits and on-chip edges to `builder`, returning
    /// the boundary ports.
    pub fn instantiate(&self, builder: &mut DeviceBuilder, chip: ChipIndex) -> ChipPorts {
        let mut ports = ChipPorts::default();
        // Dense-row qubit ids, addressable by (row, col).
        let mut row_base: Vec<(QubitId, u32)> = Vec::with_capacity(self.rows.len());

        for (r, &(start, end)) in self.rows.iter().enumerate() {
            let base = QubitId(builder.num_qubits() as u32);
            row_base.push((base, start));
            let mut prev: Option<QubitId> = None;
            for c in start..=end {
                let q = builder.add_qubit(dense_class(r, c), chip);
                if let Some(p) = prev {
                    builder.add_edge(p, q, EdgeKind::OnChip);
                }
                prev = Some(q);
                if r == 0 {
                    ports.top.push((c, q));
                }
            }
            ports.left.push(base);
            ports.right.push(QubitId(base.0 + (end - start)));

            // The connector gap below this dense row, if any. The dense
            // row underneath does not exist yet, so only the upward edge
            // is added here; downward edges are wired after the loop.
            if let Some(cols) = self.gaps.get(r) {
                for &c in cols {
                    let conn = builder.add_qubit(FrequencyClass::F2, chip);
                    let (above_base, above_start) = row_base[r];
                    builder.add_edge(
                        QubitId(above_base.0 + (c - above_start)),
                        conn,
                        EdgeKind::OnChip,
                    );
                    ports.bottom.push((c, conn));
                }
            }
        }

        // Wire connectors to the dense row *below* them. `ports.bottom`
        // currently holds every connector in gap order; drain the
        // non-final gaps into real edges and keep only the genuine
        // bottom links.
        let mut final_bottom = Vec::new();
        let mut cursor = 0usize;
        for (g, cols) in self.gaps.iter().enumerate() {
            for _ in cols {
                let (c, conn) = ports.bottom[cursor];
                cursor += 1;
                if g + 1 < self.rows.len() {
                    let (below_base, below_start) = row_base[g + 1];
                    builder.add_edge(
                        conn,
                        QubitId(below_base.0 + (c - below_start)),
                        EdgeKind::OnChip,
                    );
                } else {
                    final_bottom.push((c, conn));
                }
            }
        }
        ports.bottom = final_bottom;
        ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceBuilder;

    fn chiplet20_layout() -> RowLayout {
        // D = 2, m = 2 (W = 7): the paper's 20-qubit chiplet.
        RowLayout {
            rows: vec![(0, 7), (0, 7)],
            gaps: vec![connector_cols(0, 0, 7), connector_cols(1, 0, 7)],
        }
    }

    #[test]
    fn class_pattern_basics() {
        assert_eq!(dense_class(0, 0), FrequencyClass::F0);
        assert_eq!(dense_class(0, 1), FrequencyClass::F2);
        assert_eq!(dense_class(0, 2), FrequencyClass::F1);
        assert_eq!(dense_class(0, 3), FrequencyClass::F2);
        assert_eq!(dense_class(1, 0), FrequencyClass::F1);
        assert_eq!(dense_class(1, 2), FrequencyClass::F0);
    }

    #[test]
    fn connector_cols_alternate() {
        assert_eq!(connector_cols(0, 0, 7), vec![0, 4]);
        assert_eq!(connector_cols(1, 0, 7), vec![2, 6]);
        assert_eq!(connector_cols(0, 0, 14), vec![0, 4, 8, 12]);
        assert_eq!(connector_cols(1, 0, 14), vec![2, 6, 10, 14]);
        assert_eq!(connector_cols(1, 1, 14), vec![2, 6, 10, 14]);
        assert_eq!(connector_cols(0, 1, 13), vec![4, 8, 12]);
    }

    #[test]
    fn twenty_qubit_chiplet_counts() {
        let layout = chiplet20_layout();
        layout.validate();
        assert_eq!(layout.num_qubits(), 20);
        let mut b = DeviceBuilder::new("c20");
        let ports = layout.instantiate(&mut b, ChipIndex(0));
        let d = b.build();
        assert_eq!(d.num_qubits(), 20);
        // 2 rows x 7 horizontal + 2 between-connector x 2 + 2 bottom x 1.
        assert_eq!(d.graph().num_edges(), 20);
        assert_eq!(ports.right.len(), 2);
        assert_eq!(ports.left.len(), 2);
        assert_eq!(ports.bottom.len(), 2);
        assert_eq!(ports.top.len(), 8);
        // Right link qubits are F2.
        for q in ports.right {
            assert_eq!(d.class(q), FrequencyClass::F2);
        }
        for (_, q) in ports.bottom {
            assert_eq!(d.class(q), FrequencyClass::F2);
        }
    }

    #[test]
    fn f2_never_exceeds_degree_two_on_chip() {
        let layout = chiplet20_layout();
        let mut b = DeviceBuilder::new("c20");
        layout.instantiate(&mut b, ChipIndex(0));
        let d = b.build();
        for q in d.qubits() {
            if d.class(q) == FrequencyClass::F2 {
                assert!(d.graph().degree(q) <= 2, "{q} has degree {}", d.graph().degree(q));
            }
        }
    }

    #[test]
    fn f2_neighbors_are_one_f0_one_f1() {
        let layout = chiplet20_layout();
        let mut b = DeviceBuilder::new("c20");
        layout.instantiate(&mut b, ChipIndex(0));
        let d = b.build();
        for q in d.qubits() {
            if d.class(q) != FrequencyClass::F2 {
                continue;
            }
            let classes: Vec<_> =
                d.graph().neighbors(q).iter().map(|(n, _)| d.class(*n)).collect();
            assert!(!classes.contains(&FrequencyClass::F2), "F2 adjacent to F2 at {q}");
            if classes.len() == 2 {
                assert_ne!(classes[0], classes[1], "F2 {q} between two {}", classes[0]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "would attach to an F2")]
    fn validate_rejects_connector_on_f2_column() {
        let layout = RowLayout { rows: vec![(0, 7), (0, 7)], gaps: vec![vec![1]] };
        layout.validate();
    }

    #[test]
    #[should_panic(expected = "outside dense row")]
    fn validate_rejects_out_of_range_connector() {
        let layout = RowLayout { rows: vec![(0, 3), (0, 3)], gaps: vec![vec![4]] };
        layout.validate();
    }

    #[test]
    fn closed_tile_has_no_bottom_ports() {
        let layout =
            RowLayout { rows: vec![(0, 7), (0, 7)], gaps: vec![connector_cols(0, 0, 7)] };
        layout.validate();
        let mut b = DeviceBuilder::new("closed");
        let ports = layout.instantiate(&mut b, ChipIndex(0));
        assert!(ports.bottom.is_empty());
        assert_eq!(b.build().num_qubits(), 18);
    }
}
