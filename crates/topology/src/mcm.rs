//! Multi-chip module composition.
//!
//! An MCM arranges `k × m` identical chiplets on a carrier interposer
//! (Fig. 5 of the paper). Each chiplet's right link qubits couple to the
//! first column of the chiplet to its right, and its bottom link
//! connectors couple to the top dense row of the chiplet below. Link
//! qubits are always F2 and act as the control of the inter-chip CR
//! interaction, so the heavy-hex lattice and three-frequency pattern are
//! preserved across the whole module — the property the paper requires
//! for eventual surface/Bacon-Shor error correction.

use crate::device::{Device, DeviceBuilder, EdgeKind};
use crate::family::ChipletSpec;
use crate::qubit::ChipIndex;
use crate::rowlayout::ChipPorts;

/// A `grid_rows × grid_cols` multi-chip module of one chiplet design.
///
/// # Example
///
/// ```
/// use chipletqc_topology::family::ChipletSpec;
/// use chipletqc_topology::mcm::McmSpec;
///
/// let mcm = McmSpec::new(ChipletSpec::with_qubits(40).unwrap(), 2, 2);
/// assert_eq!(mcm.num_qubits(), 160);
/// let device = mcm.build();
/// assert_eq!(device.num_chips(), 4);
/// assert!(device.graph().is_connected());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct McmSpec {
    chiplet: ChipletSpec,
    grid_rows: usize,
    grid_cols: usize,
}

impl McmSpec {
    /// Creates an MCM spec.
    ///
    /// # Panics
    ///
    /// Panics if either grid dimension is zero (a 0-chip module is
    /// meaningless; chip dimensions come from
    /// [`chipletqc_math::combinatorics::most_square_dims`]-style
    /// factorizations which are always ≥ 1).
    pub fn new(chiplet: ChipletSpec, grid_rows: usize, grid_cols: usize) -> McmSpec {
        assert!(grid_rows > 0 && grid_cols > 0, "MCM grid dimensions must be nonzero");
        McmSpec { chiplet, grid_rows, grid_cols }
    }

    /// The chiplet design used by every chip in the module.
    pub fn chiplet(&self) -> ChipletSpec {
        self.chiplet
    }

    /// Grid rows `k`.
    pub fn grid_rows(&self) -> usize {
        self.grid_rows
    }

    /// Grid columns `m`.
    pub fn grid_cols(&self) -> usize {
        self.grid_cols
    }

    /// Total chips `k · m`.
    pub fn num_chips(&self) -> usize {
        self.grid_rows * self.grid_cols
    }

    /// Whether the module is square (`k == m`), the subset evaluated in
    /// Fig. 9 of the paper.
    pub fn is_square(&self) -> bool {
        self.grid_rows == self.grid_cols
    }

    /// Total qubits across all chips.
    pub fn num_qubits(&self) -> usize {
        self.num_chips() * self.chiplet.num_qubits()
    }

    /// The number of inter-chip link edges the assembled module uses.
    ///
    /// Horizontal seams carry one link per dense row; vertical seams one
    /// link per bottom connector (`m` links each).
    pub fn num_links(&self) -> usize {
        let horizontal = self.grid_rows * (self.grid_cols - 1) * self.chiplet.dense_rows();
        let vertical = (self.grid_rows - 1) * self.grid_cols * self.chiplet.width_param();
        horizontal + vertical
    }

    /// The chip grid position of chip `index` (row-major).
    pub fn chip_position(&self, index: ChipIndex) -> (usize, usize) {
        (index.index() / self.grid_cols, index.index() % self.grid_cols)
    }

    /// Builds the full MCM [`Device`].
    // Grid composition reads (r, c) against ports[r][c] and its
    // neighbors; indexed loops are the clearer idiom here.
    #[allow(clippy::needless_range_loop)]
    pub fn build(&self) -> Device {
        let mut builder = DeviceBuilder::new(format!(
            "mcm-{}x{}-chiplet{}",
            self.grid_rows,
            self.grid_cols,
            self.chiplet.num_qubits()
        ));
        let layout = self.chiplet.layout();
        let mut ports: Vec<Vec<ChipPorts>> = Vec::with_capacity(self.grid_rows);
        for r in 0..self.grid_rows {
            let mut row_ports = Vec::with_capacity(self.grid_cols);
            for c in 0..self.grid_cols {
                let chip = ChipIndex((r * self.grid_cols + c) as u16);
                row_ports.push(layout.instantiate(&mut builder, chip));
            }
            ports.push(row_ports);
        }
        // Horizontal links: right link qubit of dense row d -> column 0
        // of the same dense row on the right-hand neighbor.
        for r in 0..self.grid_rows {
            for c in 0..self.grid_cols - 1 {
                let (left_chip, right_chip) = (&ports[r][c], &ports[r][c + 1]);
                for d in 0..self.chiplet.dense_rows() {
                    builder.add_edge(
                        left_chip.right[d],
                        right_chip.left[d],
                        EdgeKind::InterChip,
                    );
                }
            }
        }
        // Vertical links: bottom link connector at column x -> top dense
        // row qubit at the same column of the chip below.
        for r in 0..self.grid_rows - 1 {
            for c in 0..self.grid_cols {
                let (upper, lower) = (&ports[r][c], &ports[r + 1][c]);
                for &(col, conn) in &upper.bottom {
                    let (_, target) = lower
                        .top
                        .iter()
                        .find(|(tc, _)| *tc == col)
                        .expect("identical chiplets align column-for-column");
                    builder.add_edge(conn, *target, EdgeKind::InterChip);
                }
            }
        }
        builder.build()
    }
}

impl std::fmt::Display for McmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} MCM of {} ({} qubits)",
            self.grid_rows,
            self.grid_cols,
            self.chiplet,
            self.num_qubits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qubit::FrequencyClass;

    fn mcm(q: usize, k: usize, m: usize) -> Device {
        McmSpec::new(ChipletSpec::with_qubits(q).unwrap(), k, m).build()
    }

    #[test]
    fn paper_example_2x5_of_10q_is_100_qubits() {
        let spec = McmSpec::new(ChipletSpec::with_qubits(10).unwrap(), 2, 5);
        assert_eq!(spec.num_qubits(), 100);
        let device = spec.build();
        assert_eq!(device.num_qubits(), 100);
        assert_eq!(device.num_chips(), 10);
        assert!(device.graph().is_connected());
    }

    #[test]
    fn link_count_formula_matches_built_device() {
        for (q, k, m) in [(10, 2, 5), (20, 3, 3), (40, 2, 2), (60, 2, 4), (90, 2, 2)] {
            let spec = McmSpec::new(ChipletSpec::with_qubits(q).unwrap(), k, m);
            let device = spec.build();
            assert_eq!(device.inter_chip_edges().count(), spec.num_links(), "{spec}");
        }
    }

    #[test]
    fn inter_chip_edges_cross_chips_and_on_chip_edges_do_not() {
        let device = mcm(20, 2, 3);
        for e in device.edges() {
            match e.kind {
                EdgeKind::InterChip => assert_ne!(device.chip(e.a), device.chip(e.b)),
                EdgeKind::OnChip => assert_eq!(device.chip(e.a), device.chip(e.b)),
            }
        }
    }

    #[test]
    fn links_are_f2_controlled_with_distinct_target_classes() {
        let device = mcm(10, 3, 3);
        for e in device.inter_chip_edges() {
            assert_eq!(device.class(e.control), FrequencyClass::F2);
            assert_ne!(device.class(e.target()), FrequencyClass::F2);
        }
        // The two targets of any control must be one F0 and one F1 so no
        // systematic near-null (Type 1/5) collision is designed in.
        for q in device.qubits() {
            let targets = device.targets_of(q);
            if targets.len() == 2 {
                assert_ne!(
                    device.class(targets[0]),
                    device.class(targets[1]),
                    "control {q} drives two {} targets",
                    device.class(targets[0])
                );
            }
            assert!(targets.len() <= 2, "control {q} has degree > 2");
        }
    }

    #[test]
    fn f2_degree_stays_at_most_two_in_mcm() {
        let device = mcm(20, 3, 3);
        for q in device.qubits() {
            if device.class(q) == FrequencyClass::F2 {
                assert!(device.graph().degree(q) <= 2);
            }
        }
    }

    #[test]
    fn mcm_qubit_counts_scale() {
        assert_eq!(mcm(60, 2, 2).num_qubits(), 240);
        assert_eq!(mcm(250, 1, 2).num_qubits(), 500);
    }

    #[test]
    fn one_by_one_mcm_equals_standalone_chiplet() {
        let chiplet = ChipletSpec::with_qubits(40).unwrap();
        let alone = chiplet.build();
        let module = McmSpec::new(chiplet, 1, 1).build();
        assert_eq!(alone.num_qubits(), module.num_qubits());
        assert_eq!(alone.graph().num_edges(), module.graph().num_edges());
        assert_eq!(module.inter_chip_edges().count(), 0);
    }

    #[test]
    fn chip_position_roundtrip() {
        let spec = McmSpec::new(ChipletSpec::with_qubits(10).unwrap(), 3, 4);
        assert_eq!(spec.chip_position(ChipIndex(0)), (0, 0));
        assert_eq!(spec.chip_position(ChipIndex(5)), (1, 1));
        assert_eq!(spec.chip_position(ChipIndex(11)), (2, 3));
    }

    #[test]
    fn square_detection() {
        let c = ChipletSpec::with_qubits(10).unwrap();
        assert!(McmSpec::new(c, 2, 2).is_square());
        assert!(!McmSpec::new(c, 2, 3).is_square());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_grid_rejected() {
        McmSpec::new(ChipletSpec::with_qubits(10).unwrap(), 0, 2);
    }

    #[test]
    fn link_qubits_count_matches_distinct_endpoints() {
        let device = mcm(20, 2, 2);
        let links = device.link_qubits();
        // Every inter-chip edge contributes 2 qubits; seams do not share
        // qubits in this family.
        assert_eq!(links.len(), 2 * device.inter_chip_edges().count());
    }

    #[test]
    fn wide_and_tall_mcms_connect() {
        assert!(mcm(10, 1, 7).graph().is_connected());
        assert!(mcm(10, 7, 1).graph().is_connected());
    }
}
