//! Qubit identity and frequency-class newtypes.

/// Identifies a physical qubit within one [`crate::Device`].
///
/// A `QubitId` is only meaningful relative to the device that produced
/// it; the newtype prevents accidental mixing with logical qubit indices
/// during transpilation (C-NEWTYPE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct QubitId(pub u32);

impl QubitId {
    /// The qubit id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for QubitId {
    fn from(value: u32) -> Self {
        QubitId(value)
    }
}

impl std::fmt::Display for QubitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// Identifies one chiplet within a multi-chip module.
///
/// Monolithic devices have a single chip with index 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ChipIndex(pub u16);

impl ChipIndex {
    /// The chip index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for ChipIndex {
    fn from(value: u16) -> Self {
        ChipIndex(value)
    }
}

impl std::fmt::Display for ChipIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chip{}", self.0)
    }
}

/// The three ideal frequency classes of the heavy-hex pattern.
///
/// Collision-free heavy-hex operation needs only three target frequencies
/// `F0 < F1 < F2` (Section III-B of the paper). `F2` qubits are always the
/// control in cross-resonance interactions and never exceed degree two
/// within a chip; every `F2` neighbors one `F0` and one `F1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FrequencyClass {
    /// The lowest ideal frequency (5.00 GHz in the paper's plan).
    F0,
    /// The middle ideal frequency (5.06 GHz).
    F1,
    /// The highest ideal frequency (5.12 GHz); always the CR control.
    F2,
}

impl FrequencyClass {
    /// All classes in ascending frequency order.
    pub const ALL: [FrequencyClass; 3] =
        [FrequencyClass::F0, FrequencyClass::F1, FrequencyClass::F2];

    /// The number of ideal-frequency steps above `F0` (0, 1, or 2).
    pub fn steps(self) -> u8 {
        match self {
            FrequencyClass::F0 => 0,
            FrequencyClass::F1 => 1,
            FrequencyClass::F2 => 2,
        }
    }

    /// Whether this class acts as the CR control in the heavy-hex plan.
    pub fn is_control(self) -> bool {
        self == FrequencyClass::F2
    }
}

impl std::fmt::Display for FrequencyClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F{}", self.steps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_id_roundtrip() {
        let q = QubitId::from(7u32);
        assert_eq!(q.index(), 7);
        assert_eq!(q.to_string(), "Q7");
    }

    #[test]
    fn chip_index_roundtrip() {
        let c = ChipIndex::from(3u16);
        assert_eq!(c.index(), 3);
        assert_eq!(c.to_string(), "chip3");
    }

    #[test]
    fn class_order_matches_frequency_order() {
        assert!(FrequencyClass::F0 < FrequencyClass::F1);
        assert!(FrequencyClass::F1 < FrequencyClass::F2);
        assert_eq!(FrequencyClass::F2.steps(), 2);
    }

    #[test]
    fn only_f2_controls() {
        assert!(FrequencyClass::F2.is_control());
        assert!(!FrequencyClass::F0.is_control());
        assert!(!FrequencyClass::F1.is_control());
    }

    #[test]
    fn display_forms() {
        assert_eq!(FrequencyClass::F0.to_string(), "F0");
        assert_eq!(FrequencyClass::F2.to_string(), "F2");
    }
}
