//! Ideal frequency plans.
//!
//! Section IV-B of the paper: transmons target ~5 GHz, three ideal
//! frequencies `F0 < F1 < F2` with a uniform step between them, and a
//! fixed anharmonicity α ≈ −0.330 GHz. The Monte Carlo of Fig. 4 sweeps
//! the step over 0.04–0.07 GHz and finds 0.06 GHz optimal, which the
//! paper then fixes (`F = 5.0, 5.06, 5.12 GHz`) for all later analysis.

use crate::qubit::FrequencyClass;

/// An ideal three-frequency plan plus anharmonicity, in GHz.
///
/// The paper assumes a *uniform* step between `F0`, `F1`, and `F2` and
/// names unequal steps as future work; [`FrequencyPlan::with_steps`]
/// implements that exploration (DESIGN.md §9).
///
/// # Example
///
/// ```
/// use chipletqc_topology::plan::FrequencyPlan;
/// use chipletqc_topology::qubit::FrequencyClass;
///
/// let plan = FrequencyPlan::state_of_the_art();
/// assert_eq!(plan.ideal(FrequencyClass::F0), 5.0);
/// assert!((plan.ideal(FrequencyClass::F2) - 5.12).abs() < 1e-12);
/// assert_eq!(plan.anharmonicity(), -0.330);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyPlan {
    f0: f64,
    step01: f64,
    step12: f64,
    anharmonicity: f64,
}

impl FrequencyPlan {
    /// The paper's operating point: `F0 = 5.0 GHz`, step `0.06 GHz`
    /// (the Fig. 4 optimum), `α = −0.330 GHz`.
    pub fn state_of_the_art() -> FrequencyPlan {
        FrequencyPlan { f0: 5.0, step01: 0.06, step12: 0.06, anharmonicity: -0.330 }
    }

    /// A plan with a custom uniform step (GHz), keeping the paper's
    /// `F0 = 5.0` and `α = −0.330`. This is the Fig. 4 sweep axis.
    ///
    /// # Panics
    ///
    /// Panics unless `step` is finite and positive.
    pub fn with_step(step: f64) -> FrequencyPlan {
        assert!(step.is_finite() && step > 0.0, "step must be positive, got {step}");
        FrequencyPlan { step01: step, step12: step, ..FrequencyPlan::state_of_the_art() }
    }

    /// A plan with *unequal* steps: `F1 = F0 + step01`,
    /// `F2 = F1 + step12` (extension; the paper assumes equal steps
    /// "as done in prior work" and calls varying them future work).
    ///
    /// # Panics
    ///
    /// Panics unless both steps are finite and positive.
    pub fn with_steps(step01: f64, step12: f64) -> FrequencyPlan {
        assert!(step01.is_finite() && step01 > 0.0, "step01 must be positive, got {step01}");
        assert!(step12.is_finite() && step12 > 0.0, "step12 must be positive, got {step12}");
        FrequencyPlan { step01, step12, ..FrequencyPlan::state_of_the_art() }
    }

    /// A fully custom plan.
    ///
    /// # Panics
    ///
    /// Panics unless `f0` and `anharmonicity` are finite, `step` is
    /// finite and positive, and `anharmonicity` is negative (transmons
    /// have negative anharmonicity; the collision criteria assume it).
    pub fn custom(f0: f64, step: f64, anharmonicity: f64) -> FrequencyPlan {
        assert!(f0.is_finite(), "f0 must be finite");
        assert!(step.is_finite() && step > 0.0, "step must be positive, got {step}");
        assert!(
            anharmonicity.is_finite() && anharmonicity < 0.0,
            "anharmonicity must be negative, got {anharmonicity}"
        );
        FrequencyPlan { f0, step01: step, step12: step, anharmonicity }
    }

    /// The base frequency `F0` in GHz.
    pub fn f0(&self) -> f64 {
        self.f0
    }

    /// The uniform step between ideal frequencies in GHz.
    ///
    /// # Panics
    ///
    /// Panics on an unequal-step plan; use [`FrequencyPlan::steps`]
    /// there.
    pub fn step(&self) -> f64 {
        assert!(
            (self.step01 - self.step12).abs() < 1e-15,
            "plan has unequal steps ({} and {}); use steps()",
            self.step01,
            self.step12
        );
        self.step01
    }

    /// Both steps `(F1 − F0, F2 − F1)` in GHz.
    pub fn steps(&self) -> (f64, f64) {
        (self.step01, self.step12)
    }

    /// Whether the two steps are equal (the paper's assumption).
    pub fn is_uniform(&self) -> bool {
        self.step01 == self.step12
    }

    /// The transmon anharmonicity α in GHz (negative).
    pub fn anharmonicity(&self) -> f64 {
        self.anharmonicity
    }

    /// The ideal frequency of a class.
    pub fn ideal(&self, class: FrequencyClass) -> f64 {
        match class.steps() {
            0 => self.f0,
            1 => self.f0 + self.step01,
            _ => self.f0 + self.step01 + self.step12,
        }
    }
}

impl Default for FrequencyPlan {
    fn default() -> Self {
        FrequencyPlan::state_of_the_art()
    }
}

impl std::fmt::Display for FrequencyPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "F = {:.3}/{:.3}/{:.3} GHz, alpha = {:.3} GHz",
            self.ideal(FrequencyClass::F0),
            self.ideal(FrequencyClass::F1),
            self.ideal(FrequencyClass::F2),
            self.anharmonicity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_values() {
        let plan = FrequencyPlan::state_of_the_art();
        assert_eq!(plan.ideal(FrequencyClass::F0), 5.0);
        assert!((plan.ideal(FrequencyClass::F1) - 5.06).abs() < 1e-12);
        assert!((plan.ideal(FrequencyClass::F2) - 5.12).abs() < 1e-12);
    }

    #[test]
    fn with_step_changes_only_step() {
        let plan = FrequencyPlan::with_step(0.04);
        assert_eq!(plan.f0(), 5.0);
        assert_eq!(plan.step(), 0.04);
        assert_eq!(plan.anharmonicity(), -0.330);
        assert!((plan.ideal(FrequencyClass::F2) - 5.08).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn rejects_zero_step() {
        FrequencyPlan::with_step(0.0);
    }

    #[test]
    #[should_panic(expected = "anharmonicity must be negative")]
    fn rejects_positive_anharmonicity() {
        FrequencyPlan::custom(5.0, 0.06, 0.3);
    }

    #[test]
    fn unequal_steps_extension() {
        let plan = FrequencyPlan::with_steps(0.05, 0.07);
        assert!(!plan.is_uniform());
        assert_eq!(plan.steps(), (0.05, 0.07));
        assert!((plan.ideal(FrequencyClass::F1) - 5.05).abs() < 1e-12);
        assert!((plan.ideal(FrequencyClass::F2) - 5.12).abs() < 1e-12);
        assert!(FrequencyPlan::state_of_the_art().is_uniform());
    }

    #[test]
    #[should_panic(expected = "unequal steps")]
    fn step_accessor_rejects_unequal_plans() {
        let _ = FrequencyPlan::with_steps(0.05, 0.07).step();
    }

    #[test]
    #[should_panic(expected = "step12 must be positive")]
    fn with_steps_rejects_nonpositive() {
        let _ = FrequencyPlan::with_steps(0.05, 0.0);
    }

    #[test]
    fn default_is_state_of_the_art() {
        assert_eq!(FrequencyPlan::default(), FrequencyPlan::state_of_the_art());
    }

    #[test]
    fn display_lists_all_three() {
        let s = FrequencyPlan::state_of_the_art().to_string();
        assert!(s.contains("5.060"));
        assert!(s.contains("5.120"));
    }
}
