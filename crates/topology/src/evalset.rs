//! The paper's evaluation set of MCM configurations.
//!
//! Section VII-B: "We considered chiplets with 10, 20, 40, 60, 90, 120,
//! 160, 200, and 250 qubits. We evaluated a total of 102 MCMs … MCM
//! dimensions of k×m were chosen so that each MCM in a chiplet category
//! had a unique size ≤ 500 qubits … MCM dimensions that were more
//! 'square' were prioritized." For every chiplet size `q_c` this is
//! exactly the chip counts `n = 2 … ⌊500/q_c⌋` with the most-square
//! factorization of `n`, which reproduces the paper's count of 102
//! configurations (including its worked example: the 2×2 of 10-qubit
//! chiplets is kept and the 4×1 dropped).

use chipletqc_math::combinatorics::most_square_dims;

use crate::family::ChipletSpec;
use crate::mcm::McmSpec;

/// The paper's system size cap (qubits).
pub const MAX_QUBITS: usize = 500;

/// Every MCM in the paper's evaluation set (102 systems), ordered by
/// chiplet size then total qubits.
///
/// # Example
///
/// ```
/// use chipletqc_topology::evalset::paper_mcms;
///
/// let systems = paper_mcms();
/// assert_eq!(systems.len(), 102);
/// assert!(systems.iter().all(|s| s.num_qubits() <= 500));
/// ```
pub fn paper_mcms() -> Vec<McmSpec> {
    let mut systems = Vec::new();
    for chiplet in ChipletSpec::catalog() {
        let max_chips = MAX_QUBITS / chiplet.num_qubits();
        for chips in 2..=max_chips {
            let (k, m) = most_square_dims(chips);
            systems.push(McmSpec::new(chiplet, k, m));
        }
    }
    systems
}

/// The square (`n×n`) MCMs of the evaluation set — the subset compared
/// in the Fig. 9 infidelity heatmaps.
///
/// # Example
///
/// ```
/// use chipletqc_topology::evalset::square_mcms;
///
/// let squares = square_mcms();
/// // 10q: 2x2..7x7 (6), 20q: 2x2..5x5 (4), 40q: 2 (2x2, 3x3),
/// // 60q/90q/120q: 2x2 only.
/// assert_eq!(squares.len(), 15);
/// assert!(squares.iter().all(|s| s.is_square()));
/// ```
pub fn square_mcms() -> Vec<McmSpec> {
    let mut systems = Vec::new();
    for chiplet in ChipletSpec::catalog() {
        let mut n = 2;
        while n * n * chiplet.num_qubits() <= MAX_QUBITS {
            systems.push(McmSpec::new(chiplet, n, n));
            n += 1;
        }
    }
    systems
}

/// The monolithic-size ladder used by the Fig. 4 yield sweeps: multiples
/// of 5 spanning ~5 to ~1000 qubits with denser coverage at small sizes
/// (where yield changes fastest).
pub fn fig4_size_ladder() -> Vec<usize> {
    let mut sizes: Vec<usize> = (5..=100).step_by(5).collect();
    sizes.extend((120..=300).step_by(20));
    sizes.extend((350..=1000).step_by(50));
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn exactly_102_systems_like_the_paper() {
        assert_eq!(paper_mcms().len(), 102);
    }

    #[test]
    fn per_chiplet_counts_match_derivation() {
        // 49+24+11+7+4+3+2+1+1 = 102 (DESIGN.md §3).
        let systems = paper_mcms();
        let count = |q: usize| systems.iter().filter(|s| s.chiplet().num_qubits() == q).count();
        assert_eq!(count(10), 49);
        assert_eq!(count(20), 24);
        assert_eq!(count(40), 11);
        assert_eq!(count(60), 7);
        assert_eq!(count(90), 4);
        assert_eq!(count(120), 3);
        assert_eq!(count(160), 2);
        assert_eq!(count(200), 1);
        assert_eq!(count(250), 1);
    }

    #[test]
    fn sizes_unique_within_chiplet_category() {
        let systems = paper_mcms();
        for chiplet in ChipletSpec::catalog() {
            let sizes: Vec<usize> = systems
                .iter()
                .filter(|s| s.chiplet() == chiplet)
                .map(|s| s.num_qubits())
                .collect();
            let dedup: BTreeSet<usize> = sizes.iter().copied().collect();
            assert_eq!(dedup.len(), sizes.len());
        }
    }

    #[test]
    fn paper_worked_example_present() {
        // "a 40-qubit MCM of dimension 2×2 with 10-qubit chiplets was
        // included … whereas a 4×1 configuration … was omitted."
        let systems = paper_mcms();
        assert!(systems.iter().any(|s| s.chiplet().num_qubits() == 10
            && s.grid_rows() == 2
            && s.grid_cols() == 2));
        assert!(!systems.iter().any(|s| s.chiplet().num_qubits() == 10
            && ((s.grid_rows() == 4 && s.grid_cols() == 1)
                || (s.grid_rows() == 1 && s.grid_cols() == 4))));
    }

    #[test]
    fn excluded_200q_single_counterpart_is_400_qubits() {
        // The paper excludes the 200q chiplet from the yield-improvement
        // average because its only MCM (400 qubits) had a 0%-yield
        // monolithic counterpart.
        let systems = paper_mcms();
        let two_hundred: Vec<_> =
            systems.iter().filter(|s| s.chiplet().num_qubits() == 200).collect();
        assert_eq!(two_hundred.len(), 1);
        assert_eq!(two_hundred[0].num_qubits(), 400);
    }

    #[test]
    fn square_set_matches_fig9_axes() {
        let squares = square_mcms();
        assert_eq!(squares.len(), 15);
        let largest = squares.iter().map(McmSpec::num_qubits).max().unwrap();
        assert_eq!(largest, 500); // 5x5 of 20q chiplets
                                  // The paper's highlighted configurations exist:
        assert!(squares.iter().any(|s| s.chiplet().num_qubits() == 20 && s.grid_rows() == 3)); // 180q
        assert!(squares.iter().any(|s| s.chiplet().num_qubits() == 40 && s.grid_rows() == 3));
        // 360q, best ratio 0.815
    }

    #[test]
    fn squarer_dims_have_smaller_diameter() {
        // The paper's stated reason for preferring square MCMs.
        let chiplet = ChipletSpec::with_qubits(10).unwrap();
        let square = McmSpec::new(chiplet, 2, 2).build();
        let line = McmSpec::new(chiplet, 1, 4).build();
        assert!(square.graph().diameter().unwrap() < line.graph().diameter().unwrap());
    }

    #[test]
    fn fig4_ladder_is_sorted_multiples_of_five() {
        let ladder = fig4_size_ladder();
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
        assert!(ladder.iter().all(|q| q % 5 == 0));
        assert_eq!(*ladder.first().unwrap(), 5);
        assert_eq!(*ladder.last().unwrap(), 1000);
    }
}
