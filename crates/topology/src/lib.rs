//! Heavy-hex device topologies, chiplets, and multi-chip modules.
//!
//! This crate is the device substrate of the `chipletqc` workspace. It
//! reconstructs the device family of *Scaling Superconducting Quantum
//! Computers with Chiplet Architectures* (MICRO 2022):
//!
//! * [`graph`] — undirected coupling graphs with BFS distances, diameter,
//!   and connectivity queries;
//! * [`device`] — [`device::Device`]: a coupling graph annotated with the
//!   three-frequency pattern (`F0 < F1 < F2`), cross-resonance control
//!   orientation, on-chip vs. inter-chip edge kinds, and chip membership;
//! * [`family`] — the heavy-hex chiplet family `Q = 5·D·m` reconstructed
//!   from the paper's 20- and 60-qubit chiplet descriptions, covering all
//!   nine paper chiplet sizes (10–250 qubits) and arbitrary monolithic
//!   sizes;
//! * [`mcm`] — k×m multi-chip module composition with F2 link qubits on
//!   each chiplet's right and bottom edges (Fig. 5);
//! * [`ibm`] — the motivational IBM fleet: Falcon-27, Hummingbird-65, and
//!   Eagle-127 heavy-hex topologies (Fig. 3a);
//! * [`plan`] — ideal frequency plans (`F0`, step) and anharmonicity
//!   (Section IV-B: 5.0 / 5.06 / 5.12 GHz, α = −0.330 GHz);
//! * [`evalset`] — the paper's evaluation set: 102 MCMs with unique sizes
//!   ≤ 500 qubits and most-square dimensions (Section VII-B).
//!
//! # Example
//!
//! ```
//! use chipletqc_topology::family::ChipletSpec;
//! use chipletqc_topology::mcm::McmSpec;
//!
//! let chiplet = ChipletSpec::with_qubits(20).unwrap();
//! let mcm = McmSpec::new(chiplet, 3, 3);
//! let device = mcm.build();
//! assert_eq!(device.num_qubits(), 180);
//! assert_eq!(device.num_chips(), 9);
//! assert!(device.edges().iter().any(|e| e.kind.is_inter_chip()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod evalset;
pub mod family;
pub mod graph;
pub mod ibm;
pub mod mcm;
pub mod plan;
pub mod qubit;
mod rowlayout;

pub use device::{Device, Edge, EdgeKind};
pub use family::{ChipletSpec, MonolithicSpec};
pub use graph::CouplingGraph;
pub use mcm::McmSpec;
pub use plan::FrequencyPlan;
pub use qubit::{ChipIndex, FrequencyClass, QubitId};
