//! The motivational IBM fleet (Fig. 3a of the paper).
//!
//! Three generations of heavy-hex processors, all released in 2021:
//!
//! * **Auckland** — 27-qubit Falcon (hand-coded coupling map: the Falcon
//!   is two vertically-chained heavy-hex cells with spur qubits);
//! * **Brooklyn** — 65-qubit Hummingbird (row-layout generated);
//! * **Washington** — 127-qubit Eagle (row-layout generated; the first
//!   processor past the 100-qubit milestone, and the machine whose
//!   calibration relationship the paper's fidelity model is built from).
//!
//! Frequency classes follow the same three-frequency heavy-hex pattern as
//! the chiplet family, so these devices plug into every model in the
//! workspace (collision checking, noise synthesis, transpilation).

use crate::device::{Device, DeviceBuilder, EdgeKind};
use crate::qubit::{ChipIndex, FrequencyClass, QubitId};
use crate::rowlayout::RowLayout;

/// One of the three IBM processor generations analyzed in Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IbmProcessor {
    /// 27-qubit Falcon (machine: Auckland).
    Falcon,
    /// 65-qubit Hummingbird (machine: Brooklyn).
    Hummingbird,
    /// 127-qubit Eagle (machine: Washington).
    Eagle,
}

impl IbmProcessor {
    /// All three generations, ascending by size.
    pub const ALL: [IbmProcessor; 3] =
        [IbmProcessor::Falcon, IbmProcessor::Hummingbird, IbmProcessor::Eagle];

    /// The IBM machine name used in the paper.
    pub fn machine_name(self) -> &'static str {
        match self {
            IbmProcessor::Falcon => "Auckland",
            IbmProcessor::Hummingbird => "Brooklyn",
            IbmProcessor::Eagle => "Washington",
        }
    }

    /// The processor family name.
    pub fn family_name(self) -> &'static str {
        match self {
            IbmProcessor::Falcon => "Falcon",
            IbmProcessor::Hummingbird => "Hummingbird",
            IbmProcessor::Eagle => "Eagle",
        }
    }

    /// Qubit count.
    pub fn num_qubits(self) -> usize {
        match self {
            IbmProcessor::Falcon => 27,
            IbmProcessor::Hummingbird => 65,
            IbmProcessor::Eagle => 127,
        }
    }

    /// Builds the device topology.
    pub fn build(self) -> Device {
        match self {
            IbmProcessor::Falcon => falcon27(),
            IbmProcessor::Hummingbird => hummingbird65(),
            IbmProcessor::Eagle => eagle127(),
        }
    }
}

impl std::fmt::Display for IbmProcessor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}-qubit {})",
            self.machine_name(),
            self.num_qubits(),
            self.family_name()
        )
    }
}

/// The 27-qubit Falcon coupling map (ibmq_auckland-class).
///
/// Two heavy-hex cells chained vertically; qubits 0, 6, 9, 17, 20, 26
/// are the characteristic degree-1 spurs.
pub fn falcon27() -> Device {
    const EDGES: [(u32, u32); 28] = [
        (0, 1),
        (1, 2),
        (1, 4),
        (2, 3),
        (3, 5),
        (4, 7),
        (5, 8),
        (6, 7),
        (7, 10),
        (8, 9),
        (8, 11),
        (10, 12),
        (11, 14),
        (12, 13),
        (12, 15),
        (13, 14),
        (14, 16),
        (15, 18),
        (16, 19),
        (17, 18),
        (18, 21),
        (19, 20),
        (19, 22),
        (21, 23),
        (22, 25),
        (23, 24),
        (24, 25),
        (25, 26),
    ];
    // Hexagon corners 2-colored F0/F1; all subdivision and spur qubits F2.
    const F0_CORNERS: [u32; 5] = [1, 8, 12, 19, 23];
    const F1_CORNERS: [u32; 5] = [3, 7, 14, 18, 25];
    let mut b = DeviceBuilder::new("ibm-falcon-27 (Auckland)");
    for q in 0..27u32 {
        let class = if F0_CORNERS.contains(&q) {
            FrequencyClass::F0
        } else if F1_CORNERS.contains(&q) {
            FrequencyClass::F1
        } else {
            FrequencyClass::F2
        };
        b.add_qubit(class, ChipIndex(0));
    }
    for (x, y) in EDGES {
        b.add_edge(QubitId(x), QubitId(y), EdgeKind::OnChip);
    }
    b.build()
}

/// The 65-qubit Hummingbird coupling map (ibmq_brooklyn-class): five
/// dense rows of 10/11/11/11/10 qubits and twelve connectors.
pub fn hummingbird65() -> Device {
    let layout = RowLayout {
        rows: vec![(0, 9), (0, 10), (0, 10), (0, 10), (1, 10)],
        gaps: vec![vec![0, 4, 8], vec![2, 6, 10], vec![0, 4, 8], vec![2, 6, 10]],
    };
    layout.validate();
    let mut b = DeviceBuilder::new("ibm-hummingbird-65 (Brooklyn)");
    layout.instantiate(&mut b, ChipIndex(0));
    b.build()
}

/// The 127-qubit Eagle coupling map (ibm_washington-class): seven dense
/// rows of 14/15×5/14 qubits and twenty-four connectors.
pub fn eagle127() -> Device {
    let layout = RowLayout {
        rows: vec![(0, 13), (0, 14), (0, 14), (0, 14), (0, 14), (0, 14), (1, 14)],
        gaps: vec![
            vec![0, 4, 8, 12],
            vec![2, 6, 10, 14],
            vec![0, 4, 8, 12],
            vec![2, 6, 10, 14],
            vec![0, 4, 8, 12],
            vec![2, 6, 10, 14],
        ],
    };
    layout.validate();
    let mut b = DeviceBuilder::new("ibm-eagle-127 (Washington)");
    layout.instantiate(&mut b, ChipIndex(0));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_sizes_match_fig3a() {
        assert_eq!(falcon27().num_qubits(), 27);
        assert_eq!(hummingbird65().num_qubits(), 65);
        assert_eq!(eagle127().num_qubits(), 127);
    }

    #[test]
    fn fleet_edge_counts() {
        assert_eq!(falcon27().graph().num_edges(), 28);
        assert_eq!(hummingbird65().graph().num_edges(), 72);
        assert_eq!(eagle127().graph().num_edges(), 144);
    }

    #[test]
    fn fleet_is_connected_single_chip() {
        for proc in IbmProcessor::ALL {
            let d = proc.build();
            assert!(d.graph().is_connected(), "{proc} disconnected");
            assert_eq!(d.num_chips(), 1);
            assert_eq!(d.inter_chip_edges().count(), 0);
        }
    }

    #[test]
    fn falcon_spurs_have_degree_one() {
        let d = falcon27();
        for q in [0u32, 6, 9, 17, 20, 26] {
            assert_eq!(d.graph().degree(QubitId(q)), 1, "qubit {q}");
        }
    }

    #[test]
    fn heavy_hex_degree_bound_holds() {
        for proc in IbmProcessor::ALL {
            let d = proc.build();
            for q in d.qubits() {
                assert!(d.graph().degree(q) <= 3, "{proc}: {q} has degree > 3");
            }
        }
    }

    #[test]
    fn every_f2_neighbors_only_targets() {
        for proc in IbmProcessor::ALL {
            let d = proc.build();
            for e in d.edges() {
                assert_eq!(d.class(e.control), FrequencyClass::F2, "{proc}");
                assert_ne!(d.class(e.target()), FrequencyClass::F2, "{proc}");
            }
            for q in d.qubits() {
                let targets = d.targets_of(q);
                assert!(targets.len() <= 2, "{proc}: control {q} drives {}", targets.len());
                if targets.len() == 2 {
                    assert_ne!(d.class(targets[0]), d.class(targets[1]), "{proc}: {q}");
                }
            }
        }
    }

    #[test]
    fn eagle_diameter_is_reasonable() {
        // The real ibm_washington has graph diameter 27-ish; the
        // generated topology must be in that regime (sanity guard against
        // mis-wired connectors).
        let d = eagle127().graph().diameter().unwrap();
        assert!((20..=34).contains(&d), "eagle diameter {d}");
    }

    #[test]
    fn processor_metadata() {
        assert_eq!(IbmProcessor::Eagle.machine_name(), "Washington");
        assert_eq!(IbmProcessor::Falcon.num_qubits(), 27);
        assert!(IbmProcessor::Hummingbird.to_string().contains("Brooklyn"));
    }
}
