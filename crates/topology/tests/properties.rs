//! Property tests for the heavy-hex device family.

use proptest::prelude::*;

use chipletqc_topology::device::EdgeKind;
use chipletqc_topology::family::{ChipletSpec, MonolithicSpec};
use chipletqc_topology::mcm::McmSpec;
use chipletqc_topology::qubit::{FrequencyClass, QubitId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The family size formula Q = 5·D·m holds constructively for any
    /// shape, and the built device is a connected heavy-hex lattice.
    #[test]
    fn family_formula_holds(dm in 1usize..8, m in 1usize..6) {
        let spec = ChipletSpec::new(2 * dm, m).unwrap();
        prop_assert_eq!(spec.num_qubits(), 5 * 2 * dm * m);
        let device = spec.build();
        prop_assert_eq!(device.num_qubits(), spec.num_qubits());
        prop_assert!(device.graph().is_connected());
        // Heavy-hex: degree <= 3 everywhere.
        for q in device.qubits() {
            prop_assert!(device.graph().degree(q) <= 3);
        }
    }

    /// Monolithic devices of every constructible size are valid and
    /// class-balanced (F2 strictly dominates, F0 == F1 on even rows).
    #[test]
    fn monolithic_sizes_are_constructible(q5 in 1usize..200) {
        let qubits = q5 * 5;
        let device = MonolithicSpec::with_qubits(qubits).unwrap().build();
        prop_assert_eq!(device.num_qubits(), qubits);
        let [f0, f1, f2] = device.class_counts();
        prop_assert_eq!(f0 + f1 + f2, qubits);
        prop_assert!(f2 >= f0 && f2 >= f1);
    }

    /// BFS distances are symmetric and satisfy the triangle inequality
    /// on sampled triples.
    #[test]
    fn distances_are_metric(dm in 1usize..4, m in 1usize..4, s in 0usize..1000) {
        let device = ChipletSpec::new(2 * dm, m).unwrap().build();
        let n = device.num_qubits();
        let (a, b, c) = (
            QubitId((s % n) as u32),
            QubitId((s / 3 % n) as u32),
            QubitId((s / 7 % n) as u32),
        );
        let g = device.graph();
        let d = |x, y| g.distance(x, y).unwrap() as i64;
        prop_assert_eq!(d(a, b), d(b, a));
        prop_assert!(d(a, c) <= d(a, b) + d(b, c));
        prop_assert_eq!(d(a, a), 0);
    }

    /// MCM composition preserves per-chip structure: each chip's
    /// induced subgraph has exactly the standalone chiplet's edges.
    #[test]
    fn mcm_chips_are_exact_copies(m in 1usize..3, k in 1usize..4, g in 1usize..4) {
        let chiplet = ChipletSpec::new(2, m).unwrap();
        let device = McmSpec::new(chiplet, k, g).build();
        let standalone = chiplet.build();
        let per_chip_on_chip = device
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::OnChip)
            .count();
        prop_assert_eq!(per_chip_on_chip, standalone.graph().num_edges() * k * g);
        // Chip ids partition the qubits evenly.
        let qc = chiplet.num_qubits();
        for q in device.qubits() {
            prop_assert_eq!(device.chip(q).index(), q.index() / qc);
        }
    }

    /// Shortest paths returned by the graph are genuine paths of the
    /// stated length.
    #[test]
    fn shortest_paths_are_valid(m in 1usize..4, s in 0usize..500) {
        let device = ChipletSpec::new(4, m).unwrap().build();
        let n = device.num_qubits();
        let (a, b) = (QubitId((s % n) as u32), QubitId((s * 13 % n) as u32));
        let g = device.graph();
        let path = g.shortest_path(a, b).unwrap();
        prop_assert_eq!(path[0], a);
        prop_assert_eq!(*path.last().unwrap(), b);
        prop_assert_eq!(path.len() as u32 - 1, g.distance(a, b).unwrap());
        for w in path.windows(2) {
            prop_assert!(g.edge_between(w[0], w[1]).is_some());
        }
    }

    /// Link qubits are exactly the F2 boundary: every inter-chip edge
    /// is controlled by its F2 endpoint and never doubles up.
    #[test]
    fn link_discipline(m in 1usize..3, k in 2usize..4) {
        let device = McmSpec::new(ChipletSpec::new(2, m).unwrap(), k, k).build();
        let links = device.link_qubits();
        let mut seen = std::collections::HashSet::new();
        for e in device.inter_chip_edges() {
            prop_assert_eq!(device.class(e.control), FrequencyClass::F2);
            prop_assert!(links.contains(&e.a) && links.contains(&e.b));
            // No qubit carries two links in this family.
            prop_assert!(seen.insert(e.a));
            prop_assert!(seen.insert(e.b));
        }
    }
}
