//! Property tests for the noise models.

use proptest::prelude::*;

use chipletqc_collision::frequencies::Frequencies;
use chipletqc_math::rng::Seed;
use chipletqc_noise::detuning_model::EmpiricalDetuningModel;
use chipletqc_noise::link::{LinkModel, PAPER_CHIP_MEAN};
use chipletqc_noise::washington::{paper_calibration, CalibrationData};
use chipletqc_noise::NoiseModel;
use chipletqc_topology::family::ChipletSpec;
use chipletqc_topology::plan::FrequencyPlan;

proptest! {
    /// Every empirical-model sample is literally one of the
    /// calibration values (the model is a bin-wise bootstrap, not a
    /// fit).
    #[test]
    fn empirical_samples_come_from_calibration(delta in 0.0f64..0.8, seed in 0u64..200) {
        let calibration = paper_calibration(Seed(1));
        let model = EmpiricalDetuningModel::from_calibration(&calibration).unwrap();
        let mut rng = Seed(seed).rng();
        let sample = model.sample(delta, &mut rng);
        prop_assert!(calibration.infidelities().contains(&sample));
    }

    /// The link model's mean scales exactly with the requested ratio
    /// while the shape (mean/median) stays fixed.
    #[test]
    fn link_ratio_scaling(ratio in 0.2f64..6.0) {
        let model = LinkModel::with_ratio(ratio, PAPER_CHIP_MEAN);
        prop_assert!((model.mean() - ratio * PAPER_CHIP_MEAN).abs() < 1e-9);
        prop_assert!((model.mean() / model.median() - 0.075 / 0.056).abs() < 1e-9);
    }

    /// Noise assignment is a pure function of (device, frequencies,
    /// RNG stream) and always yields probabilities.
    #[test]
    fn assignment_is_pure_and_bounded(seed in 0u64..100, cal in 0u64..5) {
        let device = ChipletSpec::with_qubits(20).unwrap().build();
        let freqs = Frequencies::ideal(&device, &FrequencyPlan::state_of_the_art());
        let model = NoiseModel::paper(Seed(cal));
        let a = model.assign(&device, &freqs, &mut Seed(seed).rng());
        let b = model.assign(&device, &freqs, &mut Seed(seed).rng());
        prop_assert_eq!(&a, &b);
        prop_assert!(a.as_slice().iter().all(|e| (0.0..1.0).contains(e)));
        prop_assert!(a.eavg() > 0.0 && a.eavg() < 1.0);
    }

    /// Bin-width changes re-partition but never lose calibration data.
    #[test]
    fn bin_width_preserves_sample_count(width_centis in 2u32..50) {
        let calibration = paper_calibration(Seed(2));
        let width = width_centis as f64 / 100.0;
        let model = EmpiricalDetuningModel::with_bin_width(&calibration, width).unwrap();
        let total: usize = model.bin_summary().iter().map(|(_, n, _)| n).sum();
        prop_assert_eq!(total, calibration.points.len());
    }

    /// Pooled statistics are invariant under point order.
    #[test]
    fn calibration_statistics_are_order_invariant(perm_seed in 0u64..100) {
        let calibration = paper_calibration(Seed(3));
        let mut shuffled = calibration.points.clone();
        chipletqc_math::rng::shuffle(&mut shuffled, &mut Seed(perm_seed).rng());
        let reordered = CalibrationData { points: shuffled };
        prop_assert!((calibration.median_infidelity() - reordered.median_infidelity()).abs() < 1e-12);
        prop_assert!((calibration.mean_infidelity() - reordered.mean_infidelity()).abs() < 1e-12);
    }
}
