//! Flip-chip inter-chip link infidelity (Section VI-B).
//!
//! Gold et al. measured coherence-limited two-qubit fidelity across
//! separate silicon dies bonded to a carrier chip: average 92.5 %,
//! median 94.4 % — i.e. infidelity mean 0.075 / median 0.056, a
//! `e_link / e_chip ≈ 0.075 / 0.018 ≈ 4.17` penalty over on-chip gates.
//! Fig. 9 of the paper sweeps this ratio down to 1 (links as good as
//! on-chip couplers) to chart how MCM advantage grows as packaging
//! matures; [`LinkModel::with_ratio`] reproduces that sweep by scaling
//! the distribution while preserving its shape.

use rand::Rng;

use chipletqc_math::dist::LogNormal;

/// The paper's on-chip mean CX infidelity (Washington average, Fig. 7).
pub const PAPER_CHIP_MEAN: f64 = 0.018;

/// The paper's link infidelity statistics from Gold et al.
pub const PAPER_LINK_MEAN: f64 = 0.075;
/// Median link infidelity from Gold et al.
pub const PAPER_LINK_MEDIAN: f64 = 0.056;

/// A sampling model for inter-chip link infidelity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    dist: LogNormal,
}

impl LinkModel {
    /// The state-of-the-art flip-chip distribution (mean 0.075, median
    /// 0.056): `e_link/e_chip ≈ 4.17`.
    pub fn paper() -> LinkModel {
        LinkModel {
            dist: LogNormal::from_mean_median(PAPER_LINK_MEAN, PAPER_LINK_MEDIAN)
                .expect("paper constants are valid"),
        }
    }

    /// A link model with mean infidelity `ratio × chip_mean`,
    /// preserving the paper distribution's shape (the Fig. 9 sweep:
    /// ratios 4.17, 3, 2, 1).
    ///
    /// # Panics
    ///
    /// Panics unless `ratio` and `chip_mean` are finite and positive.
    pub fn with_ratio(ratio: f64, chip_mean: f64) -> LinkModel {
        assert!(ratio.is_finite() && ratio > 0.0, "ratio must be positive");
        assert!(chip_mean.is_finite() && chip_mean > 0.0, "chip_mean must be positive");
        let scale = ratio * chip_mean / PAPER_LINK_MEAN;
        let base = LinkModel::paper().dist;
        LinkModel {
            dist: LogNormal::new(base.mu() + scale.ln(), base.sigma())
                .expect("scaled parameters remain finite"),
        }
    }

    /// The distribution's mean infidelity.
    pub fn mean(&self) -> f64 {
        self.dist.mean()
    }

    /// The distribution's median infidelity.
    pub fn median(&self) -> f64 {
        self.dist.median()
    }

    /// Draws one link's infidelity (clamped below 0.9: a bonded link
    /// that bad would fail known-good-die screening, and ESP math needs
    /// probabilities).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.dist.sample(rng).min(0.9)
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::paper()
    }
}

impl std::fmt::Display for LinkModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "link infidelity mean {:.4}, median {:.4}", self.mean(), self.median())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipletqc_math::rng::Seed;
    use chipletqc_math::stats::{mean, median};

    #[test]
    fn paper_moments() {
        let m = LinkModel::paper();
        assert!((m.mean() - 0.075).abs() < 1e-9);
        assert!((m.median() - 0.056).abs() < 1e-9);
    }

    #[test]
    fn paper_ratio_is_about_4() {
        let ratio = LinkModel::paper().mean() / PAPER_CHIP_MEAN;
        assert!((ratio - 4.17).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn with_ratio_scales_mean() {
        for ratio in [1.0, 2.0, 3.0] {
            let m = LinkModel::with_ratio(ratio, PAPER_CHIP_MEAN);
            assert!((m.mean() - ratio * PAPER_CHIP_MEAN).abs() < 1e-9, "ratio {ratio}");
            // Shape preserved: mean/median constant.
            assert!((m.mean() / m.median() - 0.075 / 0.056).abs() < 1e-9);
        }
    }

    #[test]
    fn ratio_4p17_recovers_paper() {
        let m = LinkModel::with_ratio(PAPER_LINK_MEAN / PAPER_CHIP_MEAN, PAPER_CHIP_MEAN);
        assert!((m.mean() - 0.075).abs() < 1e-9);
    }

    #[test]
    fn samples_match_moments() {
        let m = LinkModel::paper();
        let mut rng = Seed(5).rng();
        let samples: Vec<f64> = (0..50_000).map(|_| m.sample(&mut rng)).collect();
        assert!((mean(&samples) - 0.075).abs() < 0.003);
        assert!((median(&samples) - 0.056).abs() < 0.002);
        assert!(samples.iter().all(|e| *e > 0.0 && *e <= 0.9));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_ratio() {
        LinkModel::with_ratio(0.0, PAPER_CHIP_MEAN);
    }

    #[test]
    fn display_shows_moments() {
        assert!(LinkModel::paper().to_string().contains("0.075"));
    }
}
