//! The detuning→error-amplification response.
//!
//! The synthetic Washington calibration generator shapes its base CX
//! noise with a multiplicative response `g(Δ)` over the absolute
//! qubit-qubit detuning `Δ` (GHz). The response encodes the same physics
//! as the Table I collision criteria: CX error is amplified when the
//! detuning approaches a resonance condition and minimal in the
//! straddling-regime sweet spot:
//!
//! * a **near-null** peak at `Δ ≈ 0` (criteria 1/5),
//! * a **half-anharmonicity** bump at `Δ ≈ |α|/2 = 0.165` (criterion 2),
//! * an **anharmonicity** peak at `Δ ≈ |α| = 0.330` (criteria 3/6),
//! * a rising **outside-straddling** tail for `Δ > |α|` (criterion 4),
//! * a flat `g ≈ 1` sweet spot around `Δ ≈ 0.05–0.13` where the paper's
//!   ideal plan places its detunings.
//!
//! The paper's future-work section proposes replacing the empirical
//! relationship with a first-principles CR model; `g(Δ)` is this
//! reproduction's stand-in for the real machine's measured relationship
//! and is only used to *generate* calibration data, never consumed
//! directly by the architecture comparisons (those go through the binned
//! empirical model, as in the paper).

/// Parameters of the detuning response (peak amplitudes and widths).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseParams {
    /// Amplification at zero detuning (near-null).
    pub near_null_amp: f64,
    /// Gaussian width of the near-null peak (GHz).
    pub near_null_width: f64,
    /// Amplification at the half-anharmonicity point.
    pub half_alpha_amp: f64,
    /// Width of the half-anharmonicity bump (GHz).
    pub half_alpha_width: f64,
    /// Amplification at the anharmonicity point.
    pub alpha_amp: f64,
    /// Width of the anharmonicity peak (GHz).
    pub alpha_width: f64,
    /// Slope of the outside-straddling tail (per GHz).
    pub outside_slope: f64,
    /// The anharmonicity magnitude `|α|` (GHz).
    pub alpha_abs: f64,
}

impl ResponseParams {
    /// The calibration used by the synthetic Washington dataset.
    pub fn eagle() -> ResponseParams {
        ResponseParams {
            near_null_amp: 7.0,
            near_null_width: 0.022,
            half_alpha_amp: 1.6,
            half_alpha_width: 0.012,
            alpha_amp: 3.0,
            alpha_width: 0.030,
            outside_slope: 6.0,
            alpha_abs: 0.330,
        }
    }
}

impl Default for ResponseParams {
    fn default() -> Self {
        ResponseParams::eagle()
    }
}

/// The multiplicative error amplification at absolute detuning
/// `delta` (GHz).
///
/// Always ≥ 1; equal to ~1 in the straddling sweet spot.
///
/// # Example
///
/// ```
/// use chipletqc_noise::response::{detuning_response, ResponseParams};
///
/// let p = ResponseParams::eagle();
/// let sweet = detuning_response(0.08, &p);
/// let null = detuning_response(0.0, &p);
/// let alpha = detuning_response(0.33, &p);
/// assert!(null > 4.0 * sweet);
/// assert!(alpha > 2.0 * sweet);
/// assert!(sweet < 1.3);
/// ```
pub fn detuning_response(delta: f64, params: &ResponseParams) -> f64 {
    let delta = delta.abs();
    let gauss = |center: f64, width: f64| {
        let z = (delta - center) / width;
        (-z * z).exp()
    };
    let mut g = 1.0;
    g += params.near_null_amp * gauss(0.0, params.near_null_width);
    g += params.half_alpha_amp * gauss(params.alpha_abs / 2.0, params.half_alpha_width);
    g += params.alpha_amp * gauss(params.alpha_abs, params.alpha_width);
    if delta > params.alpha_abs {
        g += params.outside_slope * (delta - params.alpha_abs);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_is_at_least_one() {
        let p = ResponseParams::eagle();
        for i in 0..100 {
            let delta = i as f64 * 0.006;
            assert!(detuning_response(delta, &p) >= 1.0);
        }
    }

    #[test]
    fn peaks_at_collision_conditions() {
        let p = ResponseParams::eagle();
        let sweet = detuning_response(0.09, &p);
        assert!(detuning_response(0.0, &p) > sweet * 3.0);
        assert!(detuning_response(0.165, &p) > sweet * 1.5);
        assert!(detuning_response(0.330, &p) > sweet * 2.0);
        assert!(detuning_response(0.45, &p) > sweet * 1.4);
    }

    #[test]
    fn symmetric_in_sign() {
        let p = ResponseParams::eagle();
        assert_eq!(detuning_response(-0.1, &p), detuning_response(0.1, &p));
    }

    #[test]
    fn sweet_spot_is_flat() {
        let p = ResponseParams::eagle();
        let a = detuning_response(0.06, &p);
        let b = detuning_response(0.12, &p);
        assert!((a - b).abs() < 0.4, "sweet spot not flat: {a} vs {b}");
    }
}
