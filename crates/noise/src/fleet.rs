//! Synthetic fleet calibration for the Fig. 3(b) reproduction
//! (substitution; DESIGN.md §5).
//!
//! The paper gathers 15 days of CX-infidelity calibration from three IBM
//! machines (Auckland-27, Brooklyn-65, Washington-127) and observes that
//! *median CX infidelity correlates with chip size*, with larger devices
//! also showing wider distributions — the motivating evidence for
//! chiplets. This module emulates that dataset with a size-scaling law
//! calibrated to the reported ~1–2 % infidelity regime:
//!
//! ```text
//! median(q) = median_27 · (q / 27)^beta
//! ```
//!
//! with the spread scaling the same way. The law's exponent is an input
//! assumption (the real data is unavailable), but every downstream use
//! in the paper consumes only the qualitative trend.

use chipletqc_math::dist::LogNormal;
use chipletqc_math::rng::Seed;
use chipletqc_math::stats::BoxPlot;
use chipletqc_topology::ibm::IbmProcessor;

/// Parameters of the fleet calibration generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetParams {
    /// Median CX infidelity of the 27-qubit reference machine.
    pub median_27: f64,
    /// Size-scaling exponent for the median.
    pub beta: f64,
    /// LogNormal scale (spread) at 27 qubits.
    pub sigma_27: f64,
    /// Additional spread per size doubling.
    pub sigma_growth: f64,
    /// Calibration cycles (days).
    pub cycles: usize,
}

impl FleetParams {
    /// Calibration matched to Fig. 3(b)'s regime: medians rising from
    /// ~0.7 % (Falcon) through ~1.3 % (Eagle), spread widening with
    /// size.
    pub fn paper() -> FleetParams {
        FleetParams {
            median_27: 0.007,
            beta: 0.40,
            sigma_27: 0.35,
            sigma_growth: 0.09,
            cycles: 15,
        }
    }

    /// The target median for a device of `qubits` qubits.
    pub fn median_for(&self, qubits: usize) -> f64 {
        self.median_27 * (qubits as f64 / 27.0).powf(self.beta)
    }

    /// The LogNormal scale for a device of `qubits` qubits.
    pub fn sigma_for(&self, qubits: usize) -> f64 {
        self.sigma_27 + self.sigma_growth * (qubits as f64 / 27.0).log2()
    }
}

impl Default for FleetParams {
    fn default() -> Self {
        FleetParams::paper()
    }
}

/// The 15-cycle calibration summary of one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineCalibration {
    /// Which machine.
    pub processor: IbmProcessor,
    /// Every per-edge, per-cycle CX infidelity sample.
    pub samples: Vec<f64>,
    /// The box-plot summary drawn in Fig. 3(b).
    pub boxplot: BoxPlot,
}

/// Generates the three-machine calibration dataset of Fig. 3(b).
///
/// # Example
///
/// ```
/// use chipletqc_math::rng::Seed;
/// use chipletqc_noise::fleet::{synthesize_fleet, FleetParams};
///
/// let fleet = synthesize_fleet(&FleetParams::paper(), Seed(11));
/// assert_eq!(fleet.len(), 3);
/// // Median CX infidelity correlates with device size:
/// assert!(fleet[0].boxplot.median < fleet[2].boxplot.median);
/// ```
pub fn synthesize_fleet(params: &FleetParams, seed: Seed) -> Vec<MachineCalibration> {
    IbmProcessor::ALL
        .iter()
        .enumerate()
        .map(|(i, &processor)| {
            let device = processor.build();
            let q = device.num_qubits();
            let dist = LogNormal::new(params.median_for(q).ln(), params.sigma_for(q))
                .expect("calibration parameters are finite");
            let mut rng = seed.split(i as u64).rng();
            let mut samples = Vec::with_capacity(device.edges().len() * params.cycles);
            for _ in 0..params.cycles {
                for _ in device.edges() {
                    samples.push(dist.sample(&mut rng).min(0.9));
                }
            }
            let boxplot = BoxPlot::from_samples(&samples).expect("non-empty samples");
            MachineCalibration { processor, samples, boxplot }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_law_monotone() {
        let p = FleetParams::paper();
        assert!(p.median_for(27) < p.median_for(65));
        assert!(p.median_for(65) < p.median_for(127));
        assert!(p.sigma_for(27) < p.sigma_for(127));
        assert!((p.median_for(27) - 0.007).abs() < 1e-12);
    }

    #[test]
    fn medians_rise_with_size_like_fig3b() {
        let fleet = synthesize_fleet(&FleetParams::paper(), Seed(1));
        assert_eq!(fleet.len(), 3);
        assert!(fleet[0].boxplot.median < fleet[1].boxplot.median);
        assert!(fleet[1].boxplot.median < fleet[2].boxplot.median);
        // All in the paper's ~1-2% regime (0.5%-2.5% tolerance band).
        for m in &fleet {
            assert!(
                m.boxplot.median > 0.004 && m.boxplot.median < 0.025,
                "{}: median {:.4}",
                m.processor,
                m.boxplot.median
            );
        }
    }

    #[test]
    fn spread_widens_with_size() {
        let fleet = synthesize_fleet(&FleetParams::paper(), Seed(2));
        assert!(fleet[0].boxplot.iqr() < fleet[2].boxplot.iqr());
    }

    #[test]
    fn sample_counts_match_edges_times_cycles() {
        let fleet = synthesize_fleet(&FleetParams::paper(), Seed(3));
        assert_eq!(fleet[0].samples.len(), 28 * 15);
        assert_eq!(fleet[1].samples.len(), 72 * 15);
        assert_eq!(fleet[2].samples.len(), 144 * 15);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = synthesize_fleet(&FleetParams::paper(), Seed(4));
        let b = synthesize_fleet(&FleetParams::paper(), Seed(4));
        assert_eq!(a, b);
    }
}
