//! Empirical gate-infidelity models.
//!
//! Section VI of the paper builds its fidelity machinery from two data
//! sources: IBM Washington calibration data (on-chip CX infidelity vs.
//! qubit-qubit detuning, Fig. 7) and the Gold et al. flip-chip link
//! measurements (inter-chip two-qubit fidelity). Neither dataset ships
//! with this reproduction, so this crate *synthesizes* statistically
//! equivalent data (DESIGN.md §5 documents the substitution) and then
//! consumes it exactly the way the paper consumes the real data: binned
//! at 0.1 GHz detuning intervals, with per-edge infidelity assigned by
//! sampling from the matching bin.
//!
//! * [`response`] — the physics-motivated detuning→error-amplification
//!   response used by the synthetic calibration generator (peaks at the
//!   Table I collision conditions);
//! * [`washington`] — the synthetic Eagle-class calibration dataset
//!   (median ≈ 0.012, mean ≈ 0.018 pooled CX infidelity, the two
//!   statistics the paper reports for the real machine);
//! * [`detuning_model`] — the *empirical model*: binned bootstrap
//!   assignment (Fig. 7 methodology);
//! * [`link`] — flip-chip link infidelity (LogNormal matched to
//!   mean 7.5 % / median 5.6 %), parameterized by the `e_link/e_chip`
//!   ratio swept in Fig. 9;
//! * [`assign`] — whole-device noise assignment and the `E_avg` metric
//!   (average two-qubit infidelity across every coupled pair);
//! * [`fleet`] — synthetic 15-cycle calibration summaries for the three
//!   IBM machines of Fig. 3(b).
//!
//! # Example
//!
//! ```
//! use chipletqc_math::rng::Seed;
//! use chipletqc_noise::NoiseModel;
//! use chipletqc_topology::family::ChipletSpec;
//! use chipletqc_topology::plan::FrequencyPlan;
//! use chipletqc_collision::frequencies::Frequencies;
//!
//! let model = NoiseModel::paper(Seed(1));
//! let device = ChipletSpec::with_qubits(20).unwrap().build();
//! let freqs = Frequencies::ideal(&device, &FrequencyPlan::state_of_the_art());
//! let noise = model.assign(&device, &freqs, &mut Seed(2).rng());
//! let eavg = noise.eavg();
//! assert!(eavg > 0.001 && eavg < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod detuning_model;
pub mod fleet;
pub mod link;
pub mod response;
pub mod washington;

pub use assign::{EdgeNoise, NoiseModel};
pub use detuning_model::EmpiricalDetuningModel;
pub use link::LinkModel;
