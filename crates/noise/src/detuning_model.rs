//! The empirical binned detuning→infidelity model (Fig. 7 methodology).
//!
//! "Data was binned according to detuning intervals of step-size
//! 0.1 GHz … After qubit-qubit detuning characterization, gate fidelity
//! is assigned by sampling from the distribution of the corresponding
//! bin" (Section VI-A). The model is a bootstrap over bin members: to
//! assign an edge with detuning Δ, draw uniformly from the calibration
//! samples whose detuning fell in Δ's bin. Sparse bins fall back to the
//! nearest populated bin (the paper notes the sampling bounds are
//! adjustable; this is the minimal such adjustment).

use rand::Rng;

use chipletqc_math::histogram::{Binning, SampleHistogram};
use chipletqc_math::stats::{mean, median};

use crate::washington::CalibrationData;

/// The binned empirical model.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalDetuningModel {
    histogram: SampleHistogram,
}

/// Error constructing an empirical model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelError {
    /// No calibration points were supplied.
    EmptyCalibration,
    /// The bin width was invalid.
    InvalidBinWidth,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::EmptyCalibration => write!(f, "calibration dataset is empty"),
            ModelError::InvalidBinWidth => write!(f, "bin width must be finite and positive"),
        }
    }
}

impl std::error::Error for ModelError {}

impl EmpiricalDetuningModel {
    /// The paper's bin width: 0.1 GHz.
    pub const PAPER_BIN_WIDTH: f64 = 0.1;

    /// Builds the model from calibration data with the paper's 0.1 GHz
    /// bins.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyCalibration`] for an empty dataset.
    pub fn from_calibration(
        data: &CalibrationData,
    ) -> Result<EmpiricalDetuningModel, ModelError> {
        EmpiricalDetuningModel::with_bin_width(data, Self::PAPER_BIN_WIDTH)
    }

    /// Builds the model with a custom bin width (the paper notes "the
    /// parameterized nature of the presented modeling framework allows
    /// the sampling bounds to be adjusted").
    ///
    /// # Errors
    ///
    /// Returns an error for an empty dataset or invalid width.
    pub fn with_bin_width(
        data: &CalibrationData,
        width: f64,
    ) -> Result<EmpiricalDetuningModel, ModelError> {
        if data.points.is_empty() {
            return Err(ModelError::EmptyCalibration);
        }
        let binning = Binning::new(0.0, width).map_err(|_| ModelError::InvalidBinWidth)?;
        let mut histogram = SampleHistogram::new(binning);
        for &(delta, infid) in &data.points {
            histogram.insert(delta.abs(), infid);
        }
        Ok(EmpiricalDetuningModel { histogram })
    }

    /// Assigns a CX infidelity for an edge with absolute detuning
    /// `delta` by bootstrap-sampling the matching bin.
    pub fn sample<R: Rng + ?Sized>(&self, delta: f64, rng: &mut R) -> f64 {
        let idx = self.histogram.binning().index_of(delta.abs());
        let idx = self
            .histogram
            .nearest_populated(idx)
            .expect("constructor rejects empty calibration");
        let samples = self.histogram.samples(idx);
        samples[rng.gen_range(0..samples.len())]
    }

    /// The mean infidelity of the bin containing `delta` (deterministic
    /// summary, used by analytic comparisons).
    pub fn bin_mean(&self, delta: f64) -> f64 {
        let idx = self.histogram.binning().index_of(delta.abs());
        let idx = self
            .histogram
            .nearest_populated(idx)
            .expect("constructor rejects empty calibration");
        mean(self.histogram.samples(idx))
    }

    /// Pooled median across all calibration samples.
    pub fn pooled_median(&self) -> f64 {
        median(&self.all_samples())
    }

    /// Pooled mean across all calibration samples.
    pub fn pooled_mean(&self) -> f64 {
        mean(&self.all_samples())
    }

    /// Per-bin summary rows `(bin_center, count, mean)` for non-empty
    /// bins, ascending by detuning — the tabular form of Fig. 7.
    pub fn bin_summary(&self) -> Vec<(f64, usize, f64)> {
        self.histogram
            .iter()
            .map(|(i, samples)| {
                (self.histogram.binning().center(i), samples.len(), mean(samples))
            })
            .collect()
    }

    fn all_samples(&self) -> Vec<f64> {
        self.histogram.iter().flat_map(|(_, s)| s.iter().copied()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::washington::paper_calibration;
    use chipletqc_math::rng::Seed;

    fn model() -> EmpiricalDetuningModel {
        EmpiricalDetuningModel::from_calibration(&paper_calibration(Seed(1))).unwrap()
    }

    #[test]
    fn rejects_empty_calibration() {
        let empty = CalibrationData { points: vec![] };
        assert_eq!(
            EmpiricalDetuningModel::from_calibration(&empty).unwrap_err(),
            ModelError::EmptyCalibration
        );
    }

    #[test]
    fn rejects_bad_width() {
        let data = CalibrationData { points: vec![(0.1, 0.01)] };
        assert_eq!(
            EmpiricalDetuningModel::with_bin_width(&data, 0.0).unwrap_err(),
            ModelError::InvalidBinWidth
        );
    }

    #[test]
    fn samples_come_from_the_matching_bin() {
        let data = CalibrationData {
            points: vec![(0.05, 0.001), (0.06, 0.002), (0.15, 0.1), (0.17, 0.2)],
        };
        let model = EmpiricalDetuningModel::from_calibration(&data).unwrap();
        let mut rng = Seed(2).rng();
        for _ in 0..50 {
            let low = model.sample(0.03, &mut rng);
            assert!(low == 0.001 || low == 0.002);
            let high = model.sample(0.19, &mut rng);
            assert!(high == 0.1 || high == 0.2);
        }
    }

    #[test]
    fn empty_bins_fall_back_to_nearest() {
        let data = CalibrationData { points: vec![(0.05, 0.003)] };
        let model = EmpiricalDetuningModel::from_calibration(&data).unwrap();
        let mut rng = Seed(3).rng();
        // Detuning 0.9 GHz: bin 9 is empty; nearest populated is bin 0.
        assert_eq!(model.sample(0.9, &mut rng), 0.003);
        assert_eq!(model.bin_mean(0.9), 0.003);
    }

    #[test]
    fn pooled_statistics_track_calibration() {
        let model = model();
        assert!((model.pooled_median() - 0.012).abs() < 0.006);
        assert!((model.pooled_mean() - 0.018).abs() < 0.008);
    }

    #[test]
    fn bin_summary_is_sorted_and_complete() {
        let model = model();
        let summary = model.bin_summary();
        assert!(!summary.is_empty());
        assert!(summary.windows(2).all(|w| w[0].0 < w[1].0));
        let total: usize = summary.iter().map(|(_, n, _)| n).sum();
        assert_eq!(total, 144);
    }

    #[test]
    fn near_null_bins_are_noisier_than_sweet_spot() {
        // The empirical model must inherit the collision physics from
        // the generator: bin 0 (0-0.1 GHz, containing near-null pairs)
        // averages worse than... actually bin 0 also contains the sweet
        // spot. Compare the outside-straddling bin (0.4+) with the sweet
        // spot region instead via bin means at representative points.
        let model = model();
        let sweet = model.bin_mean(0.15);
        let outside = model.bin_mean(0.45);
        assert!(
            outside > sweet,
            "outside-straddling {outside:.4} should exceed mid-range {sweet:.4}"
        );
    }

    #[test]
    fn negative_detunings_are_folded() {
        let data = CalibrationData { points: vec![(0.05, 0.004)] };
        let model = EmpiricalDetuningModel::from_calibration(&data).unwrap();
        let mut rng = Seed(4).rng();
        assert_eq!(model.sample(-0.05, &mut rng), 0.004);
    }
}
