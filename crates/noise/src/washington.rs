//! Synthetic IBM-Washington calibration data (substitution; DESIGN.md §5).
//!
//! The paper gathers 15 calibration cycles of CX infidelity and qubit
//! frequencies from the real 127-qubit Eagle machine and correlates
//! average CX infidelity with qubit-qubit detuning (Fig. 7: median
//! 0.012, average 0.018, binned at 0.1 GHz). This module generates a
//! statistically equivalent dataset:
//!
//! 1. build the Eagle-127 heavy-hex topology;
//! 2. fabricate it once with the Eagle-era frequency spread
//!    (`σ_f = 0.1 GHz`, the fabrication-induced spread the paper quotes
//!    from Zhang et al.);
//! 3. for each of 15 cycles, draw every edge's CX infidelity as
//!    `base × g(Δ) × drift`, where `base` is LogNormal CX noise,
//!    `g(Δ)` is the collision-physics response of [`crate::response`],
//!    and `drift` is a per-cycle LogNormal wobble (real QC noise
//!    fluctuates day to day — the paper cites Dasgupta & Humble);
//! 4. average each edge over the cycles and emit `(detuning, mean
//!    infidelity)` pairs — exactly the points plotted in Fig. 7.

use chipletqc_math::dist::{LogNormal, Normal};
use chipletqc_math::rng::Seed;
use chipletqc_math::stats::{mean, median};
use chipletqc_topology::ibm::eagle127;
use chipletqc_topology::plan::FrequencyPlan;

use crate::response::{detuning_response, ResponseParams};

/// Parameters of the synthetic calibration generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WashingtonParams {
    /// Fabrication-era frequency spread around the ideal plan (GHz).
    pub sigma_f: f64,
    /// Number of calibration cycles averaged per edge.
    pub cycles: usize,
    /// Median of the LogNormal base CX infidelity.
    pub base_median: f64,
    /// Scale (σ of the underlying normal) of the base infidelity.
    pub base_sigma: f64,
    /// Per-cycle drift scale (σ of the underlying normal).
    pub drift_sigma: f64,
    /// The detuning response shape.
    pub response: ResponseParams,
}

impl WashingtonParams {
    /// The calibration matched to the paper's reported statistics
    /// (pooled median ≈ 0.012, mean ≈ 0.018).
    pub fn paper() -> WashingtonParams {
        WashingtonParams {
            sigma_f: 0.1,
            cycles: 15,
            base_median: 0.0088,
            base_sigma: 0.55,
            drift_sigma: 0.25,
            response: ResponseParams::eagle(),
        }
    }
}

impl Default for WashingtonParams {
    fn default() -> Self {
        WashingtonParams::paper()
    }
}

/// One synthetic calibration dataset: per-edge detuning and
/// cycle-averaged CX infidelity, plus the per-cycle raw values.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationData {
    /// `(|Δ| GHz, mean CX infidelity)` per coupled pair — the Fig. 7
    /// scatter points.
    pub points: Vec<(f64, f64)>,
}

impl CalibrationData {
    /// The median of the averaged infidelities (paper: 0.012).
    pub fn median_infidelity(&self) -> f64 {
        median(&self.infidelities())
    }

    /// The mean of the averaged infidelities (paper: 0.018).
    pub fn mean_infidelity(&self) -> f64 {
        mean(&self.infidelities())
    }

    /// The infidelity column.
    pub fn infidelities(&self) -> Vec<f64> {
        self.points.iter().map(|(_, e)| *e).collect()
    }

    /// The detuning column.
    pub fn detunings(&self) -> Vec<f64> {
        self.points.iter().map(|(d, _)| *d).collect()
    }
}

/// Generates the synthetic Washington calibration dataset.
///
/// Deterministic in `seed`.
///
/// # Example
///
/// ```
/// use chipletqc_math::rng::Seed;
/// use chipletqc_noise::washington::{synthesize_calibration, WashingtonParams};
///
/// let data = synthesize_calibration(&WashingtonParams::paper(), Seed(7));
/// assert_eq!(data.points.len(), 144); // one point per Eagle edge
/// ```
pub fn synthesize_calibration(params: &WashingtonParams, seed: Seed) -> CalibrationData {
    let device = eagle127();
    let plan = FrequencyPlan::state_of_the_art();
    let mut rng = seed.rng();
    // One fabrication outcome for the machine (frequencies are fixed
    // hardware properties; only noise drifts between cycles).
    let spread = Normal::new(0.0, params.sigma_f).expect("finite sigma");
    let freqs: Vec<f64> = device
        .qubits()
        .map(|q| plan.ideal(device.class(q)) + spread.sample(&mut rng))
        .collect();

    let base = LogNormal::new(params.base_median.ln(), params.base_sigma).expect("finite");
    let drift = LogNormal::new(0.0, params.drift_sigma).expect("finite");

    let mut points = Vec::with_capacity(device.edges().len());
    for e in device.edges() {
        let delta = (freqs[e.a.index()] - freqs[e.b.index()]).abs();
        let g = detuning_response(delta, &params.response);
        let mut total = 0.0;
        for _ in 0..params.cycles {
            let raw = base.sample(&mut rng) * g * drift.sample(&mut rng);
            total += raw.min(0.9);
        }
        points.push((delta, total / params.cycles as f64));
    }
    CalibrationData { points }
}

/// Convenience: pooled samples for arbitrary `(detuning, infidelity)`
/// analysis, e.g. feeding [`crate::detuning_model`].
pub fn paper_calibration(seed: Seed) -> CalibrationData {
    synthesize_calibration(&WashingtonParams::paper(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_match_fig7() {
        // Average over several generator seeds: the pooled statistics
        // must land on the paper's reported median 0.012 / mean 0.018.
        let mut medians = Vec::new();
        let mut means = Vec::new();
        for s in 0..10 {
            let data = paper_calibration(Seed(s));
            medians.push(data.median_infidelity());
            means.push(data.mean_infidelity());
        }
        let med = mean(&medians);
        let avg = mean(&means);
        assert!((med - 0.012).abs() < 0.003, "median {med:.4}");
        assert!((avg - 0.018).abs() < 0.005, "mean {avg:.4}");
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(paper_calibration(Seed(3)), paper_calibration(Seed(3)));
        assert_ne!(paper_calibration(Seed(3)), paper_calibration(Seed(4)));
    }

    #[test]
    fn detunings_span_the_fabrication_spread() {
        let data = paper_calibration(Seed(1));
        let detunings = data.detunings();
        let max = detunings.iter().cloned().fold(0.0, f64::max);
        // sigma 0.1 per qubit => neighbor detunings up to ~0.5 GHz.
        assert!(max > 0.25, "max detuning {max}");
        assert!(detunings.iter().all(|d| *d >= 0.0));
    }

    #[test]
    fn infidelities_are_probabilities() {
        let data = paper_calibration(Seed(2));
        assert!(data.infidelities().iter().all(|e| *e > 0.0 && *e < 1.0));
    }

    #[test]
    fn with_noise_off_infidelity_tracks_the_detuning_response() {
        // Shrink the stochastic scales to (near) zero: every point
        // collapses to base_median * g(detuning), so equal detunings
        // produce equal infidelities and the near-null edges are the
        // worst on the chip.
        let quiet = WashingtonParams {
            base_sigma: 1e-9,
            drift_sigma: 1e-9,
            ..WashingtonParams::paper()
        };
        let data = synthesize_calibration(&quiet, Seed(9));
        let base = quiet.base_median;
        for &(delta, infid) in &data.points {
            let expected = base * crate::response::detuning_response(delta, &quiet.response);
            assert!(
                (infid - expected.min(0.9)).abs() < 1e-6,
                "delta {delta}: {infid} vs {expected}"
            );
        }
        // The worst pair sits near a collision condition, not the sweet spot.
        let (worst_delta, _) =
            data.points.iter().cloned().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        let near_condition =
            worst_delta < 0.04 || (worst_delta - 0.165).abs() < 0.04 || worst_delta > 0.30;
        assert!(near_condition, "worst detuning {worst_delta}");
    }
}
