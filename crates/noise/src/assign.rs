//! Whole-device noise assignment and the `E_avg` metric.
//!
//! A [`NoiseModel`] bundles the empirical on-chip model (Fig. 7) with a
//! link model (Section VI-B). Assigning it to a fabricated device
//! produces an [`EdgeNoise`]: one CX infidelity per coupled pair —
//! on-chip pairs sampled from the detuning bin matching their fabricated
//! detuning, inter-chip pairs from the link distribution.
//!
//! `E_avg`, "average infidelity averaged across every qubit pair", is
//! the Fig. 9 comparison metric.

use rand::Rng;

use chipletqc_collision::frequencies::Frequencies;
use chipletqc_math::codec::{ByteReader, ByteWriter, Codec, CodecError};
use chipletqc_math::rng::Seed;
use chipletqc_math::stats::mean;
use chipletqc_topology::device::{Device, EdgeKind};
use chipletqc_topology::graph::EdgeId;

use crate::detuning_model::EmpiricalDetuningModel;
use crate::link::{LinkModel, PAPER_CHIP_MEAN};
use crate::washington::paper_calibration;

/// On-chip + link noise models, ready to assign to devices.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    chip: EmpiricalDetuningModel,
    link: LinkModel,
}

impl NoiseModel {
    /// The paper's models: synthetic Washington calibration (seeded by
    /// `calibration_seed`) binned at 0.1 GHz, plus the Gold et al. link
    /// distribution (`e_link/e_chip ≈ 4.17`).
    pub fn paper(calibration_seed: Seed) -> NoiseModel {
        let calibration = paper_calibration(calibration_seed);
        NoiseModel {
            chip: EmpiricalDetuningModel::from_calibration(&calibration)
                .expect("synthetic calibration is non-empty"),
            link: LinkModel::paper(),
        }
    }

    /// The paper's on-chip model with links at `ratio × e_chip` mean
    /// (the Fig. 9 sweep).
    pub fn with_link_ratio(calibration_seed: Seed, ratio: f64) -> NoiseModel {
        let mut model = NoiseModel::paper(calibration_seed);
        model.link = LinkModel::with_ratio(ratio, PAPER_CHIP_MEAN);
        model
    }

    /// A model from explicit parts.
    pub fn new(chip: EmpiricalDetuningModel, link: LinkModel) -> NoiseModel {
        NoiseModel { chip, link }
    }

    /// The on-chip empirical model.
    pub fn chip_model(&self) -> &EmpiricalDetuningModel {
        &self.chip
    }

    /// The link model.
    pub fn link_model(&self) -> &LinkModel {
        &self.link
    }

    /// Assigns per-edge CX infidelity to a fabricated device.
    ///
    /// # Panics
    ///
    /// Panics if `freqs` does not cover the device.
    pub fn assign<R: Rng + ?Sized>(
        &self,
        device: &Device,
        freqs: &Frequencies,
        rng: &mut R,
    ) -> EdgeNoise {
        assert_eq!(
            device.num_qubits(),
            freqs.len(),
            "frequency assignment does not cover device {}",
            device.name()
        );
        let infidelities = device
            .edges()
            .iter()
            .map(|e| match e.kind {
                EdgeKind::OnChip => self.chip.sample(freqs.detuning(e.a, e.b), rng),
                EdgeKind::InterChip => self.link.sample(rng),
            })
            .collect();
        EdgeNoise { infidelities }
    }
}

/// Per-edge CX infidelity for one fabricated, noise-assigned device.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeNoise {
    infidelities: Vec<f64>,
}

impl EdgeNoise {
    /// Wraps explicit per-edge infidelities (edge-id order).
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `[0, 1)`.
    pub fn from_infidelities(infidelities: Vec<f64>) -> EdgeNoise {
        assert!(
            infidelities.iter().all(|e| (0.0..1.0).contains(e)),
            "infidelities must be in [0, 1)"
        );
        EdgeNoise { infidelities }
    }

    /// The CX infidelity of `edge`.
    pub fn infidelity(&self, edge: EdgeId) -> f64 {
        self.infidelities[edge.index()]
    }

    /// The CX fidelity of `edge` (`1 − infidelity`).
    pub fn fidelity(&self, edge: EdgeId) -> f64 {
        1.0 - self.infidelities[edge.index()]
    }

    /// Number of edges covered.
    pub fn len(&self) -> usize {
        self.infidelities.len()
    }

    /// Whether no edges are covered.
    pub fn is_empty(&self) -> bool {
        self.infidelities.is_empty()
    }

    /// `E_avg`: the average two-qubit infidelity across every coupled
    /// pair (the Fig. 9 metric).
    pub fn eavg(&self) -> f64 {
        mean(&self.infidelities)
    }

    /// `E_avg` restricted to an edge subset (e.g. on-chip vs. links).
    pub fn eavg_of(&self, device: &Device, kind: EdgeKind) -> f64 {
        let subset: Vec<f64> = device
            .edges()
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| self.infidelities[e.id.index()])
            .collect();
        mean(&subset)
    }

    /// All infidelities in edge-id order.
    pub fn as_slice(&self) -> &[f64] {
        &self.infidelities
    }
}

/// Binary persistence for the result store: one length-prefixed `f64`
/// slice. Decoding re-checks the `[0, 1)` domain so a corrupted entry
/// surfaces as an error instead of tripping the
/// [`EdgeNoise::from_infidelities`] assertion.
impl Codec for EdgeNoise {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64_slice(&self.infidelities);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<EdgeNoise, CodecError> {
        let infidelities = r.get_f64_vec()?;
        if !infidelities.iter().all(|e| (0.0..1.0).contains(e)) {
            return Err(CodecError::Invalid("edge infidelity outside [0, 1)".into()));
        }
        Ok(EdgeNoise { infidelities })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipletqc_topology::family::ChipletSpec;
    use chipletqc_topology::mcm::McmSpec;
    use chipletqc_topology::plan::FrequencyPlan;

    fn ideal_freqs(device: &Device) -> Frequencies {
        Frequencies::ideal(device, &FrequencyPlan::state_of_the_art())
    }

    #[test]
    fn assign_covers_every_edge() {
        let device = ChipletSpec::with_qubits(60).unwrap().build();
        let model = NoiseModel::paper(Seed(1));
        let noise = model.assign(&device, &ideal_freqs(&device), &mut Seed(2).rng());
        assert_eq!(noise.len(), device.edges().len());
        assert!(noise.as_slice().iter().all(|e| *e > 0.0 && *e < 1.0));
    }

    #[test]
    fn links_are_noisier_on_average_at_paper_ratio() {
        let device = McmSpec::new(ChipletSpec::with_qubits(20).unwrap(), 3, 3).build();
        let model = NoiseModel::paper(Seed(1));
        let noise = model.assign(&device, &ideal_freqs(&device), &mut Seed(3).rng());
        let on_chip = noise.eavg_of(&device, EdgeKind::OnChip);
        let links = noise.eavg_of(&device, EdgeKind::InterChip);
        assert!(links > 2.0 * on_chip, "links {links:.4} vs on-chip {on_chip:.4}");
        let eavg = noise.eavg();
        assert!(eavg > on_chip && eavg < links);
    }

    #[test]
    fn ratio_one_links_match_chip_error() {
        let device = McmSpec::new(ChipletSpec::with_qubits(10).unwrap(), 4, 4).build();
        let model = NoiseModel::with_link_ratio(Seed(1), 1.0);
        // Average over several assignments to beat sampling noise.
        let mut chip_acc = Vec::new();
        let mut link_acc = Vec::new();
        for s in 0..30 {
            let noise = model.assign(&device, &ideal_freqs(&device), &mut Seed(100 + s).rng());
            chip_acc.push(noise.eavg_of(&device, EdgeKind::OnChip));
            link_acc.push(noise.eavg_of(&device, EdgeKind::InterChip));
        }
        let chip = mean(&chip_acc);
        let link = mean(&link_acc);
        // Both should sit near the paper's 0.018 on-chip mean. The
        // on-chip empirical model at *ideal* detunings (0.06/0.12)
        // samples the sweet-spot bin, which averages below the pooled
        // mean; allow a generous band.
        assert!((link - 0.018).abs() < 0.004, "link {link:.4}");
        assert!(chip > 0.005 && chip < 0.03, "chip {chip:.4}");
    }

    #[test]
    fn deterministic_given_rng_stream() {
        let device = ChipletSpec::with_qubits(20).unwrap().build();
        let model = NoiseModel::paper(Seed(7));
        let a = model.assign(&device, &ideal_freqs(&device), &mut Seed(9).rng());
        let b = model.assign(&device, &ideal_freqs(&device), &mut Seed(9).rng());
        assert_eq!(a, b);
    }

    #[test]
    fn from_infidelities_validates() {
        let noise = EdgeNoise::from_infidelities(vec![0.01, 0.02]);
        assert_eq!(noise.infidelity(EdgeId(0)), 0.01);
        assert!((noise.fidelity(EdgeId(1)) - 0.98).abs() < 1e-12);
        assert!((noise.eavg() - 0.015).abs() < 1e-12);
        assert!(!noise.is_empty());
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn from_infidelities_rejects_out_of_range() {
        EdgeNoise::from_infidelities(vec![1.5]);
    }

    #[test]
    fn codec_round_trips_and_rejects_out_of_range() {
        use chipletqc_math::codec::{decode_from_slice, encode_to_vec};
        let noise = EdgeNoise::from_infidelities(vec![0.01, 0.5, 1.0 - f64::EPSILON]);
        let bytes = encode_to_vec(&noise);
        assert_eq!(decode_from_slice::<EdgeNoise>(&bytes).unwrap(), noise);
        let mut bad = bytes.clone();
        bad[8..16].copy_from_slice(&1.5f64.to_le_bytes());
        assert!(decode_from_slice::<EdgeNoise>(&bad).is_err());
        assert!(decode_from_slice::<EdgeNoise>(&bytes[..7]).is_err());
    }

    #[test]
    fn accessors() {
        let model = NoiseModel::paper(Seed(1));
        assert!((model.link_model().mean() - 0.075).abs() < 1e-9);
        assert!(model.chip_model().pooled_mean() > 0.005);
    }
}
