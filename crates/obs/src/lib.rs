//! Process-wide observability: counters, gauges, fixed-bucket latency
//! histograms, and RAII spans — std-only, no external dependencies,
//! matching the workspace's vendored-stand-in discipline.
//!
//! # Model
//!
//! A single global [`Registry`] owns every instrument, keyed by name.
//! Call sites hold cheap cloneable handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) wrapping atomics, so the hot-path cost of an update
//! is one relaxed atomic op; the registry mutex is touched only at
//! registration (first lookup of a name) and when snapshotting.
//!
//! [`span`] returns an RAII timer that records its elapsed wall time
//! into the histogram of the same name on drop. When a JSON-lines
//! trace has been enabled with [`trace_to`], each finished span also
//! appends one event line — monotonic microsecond timestamps relative
//! to process start, plus any labels attached with [`Span::label`] —
//! suitable for `chipletqc trace summarize` or external tooling.
//!
//! [`snapshot`] returns a pure-data [`Snapshot`] (names and numbers
//! only); serialization is the caller's concern, so this crate stays
//! dependency-free and usable from every layer of the workspace.
//!
//! Instruments are never unregistered; values accumulate for the life
//! of the process. Consumers that need per-interval deltas (e.g. a
//! per-batch report) snapshot twice and subtract, exactly like the
//! store's session counters.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of power-of-two latency buckets. Bucket 0 holds sub-µs
/// samples; bucket `i >= 1` holds samples in `[2^(i-1), 2^i)` µs; the
/// last bucket is open-ended (>= ~18 minutes, far beyond any span
/// this workspace times).
const BUCKETS: usize = 32;

/// The monotonic origin every trace timestamp is relative to: first
/// use of the crate, which in practice is process start.
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process-wide monotonic origin.
pub fn now_micros() -> u64 {
    origin().elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------------
// Instruments

/// A monotonically increasing counter. Handles are cheap clones of the
/// registered atomic; updates are relaxed.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, inflight batches).
/// Updated by *delta* — `inc`/`dec` — never by absolute store, so
/// concurrent owners (e.g. parallel tests sharing the process-wide
/// registry) compose instead of clobbering each other.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn inc(&self) {
        self.add(1);
    }
    pub fn dec(&self) {
        self.add(-1);
    }
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl HistogramInner {
    fn new() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

/// Index of the power-of-two bucket holding a `micros` sample.
fn bucket_of(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        ((64 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The inclusive upper bound (µs) a bucket index reports for
/// percentiles — the worst case within the bucket, so percentiles err
/// pessimistic rather than optimistic.
fn bucket_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        (1u64 << index) - 1
    }
}

/// A fixed-bucket latency histogram over microseconds. Recording is a
/// handful of relaxed atomic ops; percentiles are derived from the
/// bucket boundaries at snapshot time (resolution: one power of two).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    pub fn record_micros(&self, micros: u64) {
        let inner = &self.0;
        inner.buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum_us.fetch_add(micros, Ordering::Relaxed);
        inner.max_us.fetch_max(micros, Ordering::Relaxed);
    }

    /// Records the wall time of `f` and returns its result.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let started = Instant::now();
        let out = f();
        self.record_micros(started.elapsed().as_micros() as u64);
        out
    }

    pub fn summary(&self) -> HistogramSummary {
        let inner = &self.0;
        let count = inner.count.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum_us: inner.sum_us.load(Ordering::Relaxed),
            p50_us: self.percentile(count, 50),
            p90_us: self.percentile(count, 90),
            max_us: inner.max_us.load(Ordering::Relaxed),
        }
    }

    /// Upper bound of the bucket containing the q-th percentile
    /// sample. `count` is passed in so one snapshot's percentiles all
    /// describe the same population even while recording continues.
    fn percentile(&self, count: u64, q: u64) -> u64 {
        if count == 0 {
            return 0;
        }
        // 1-based rank of the percentile sample, rounding up: the
        // sample at or above which q percent of the population sits.
        let rank = (count * q).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.0.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bound(index);
            }
        }
        bucket_bound(BUCKETS - 1)
    }
}

/// Pure-data summary of one histogram — what [`Snapshot`] carries and
/// what a status frame or report serializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum_us: u64,
    pub p50_us: u64,
    pub p90_us: u64,
    pub max_us: u64,
}

// ---------------------------------------------------------------------------
// Registry

/// The process-wide instrument registry. Obtain handles through the
/// free functions [`counter`]/[`gauge`]/[`histogram`]; the struct is
/// public only so [`snapshot`] has a home for its documentation.
#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter registered under `name`, creating it at zero on first
/// use. Cache the handle outside loops — the lookup takes the
/// registry lock.
pub fn counter(name: &str) -> Counter {
    let mut map = registry().counters.lock().expect("obs registry poisoned");
    map.entry(name.to_string()).or_insert_with(|| Counter(Arc::new(AtomicU64::new(0)))).clone()
}

/// The gauge registered under `name`, creating it at zero on first use.
pub fn gauge(name: &str) -> Gauge {
    let mut map = registry().gauges.lock().expect("obs registry poisoned");
    map.entry(name.to_string()).or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0)))).clone()
}

/// The histogram registered under `name`, creating it empty on first
/// use.
pub fn histogram(name: &str) -> Histogram {
    let mut map = registry().histograms.lock().expect("obs registry poisoned");
    map.entry(name.to_string())
        .or_insert_with(|| Histogram(Arc::new(HistogramInner::new())))
        .clone()
}

/// A full, consistent-enough snapshot of the registry: every
/// instrument's name and current value, sorted by name (BTreeMap
/// order), so two snapshots of an idle process are identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSummary)>,
}

/// Snapshots every registered instrument.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .expect("obs registry poisoned")
        .iter()
        .map(|(name, c)| (name.clone(), c.value()))
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .expect("obs registry poisoned")
        .iter()
        .map(|(name, g)| (name.clone(), g.value()))
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .expect("obs registry poisoned")
        .iter()
        .map(|(name, h)| (name.clone(), h.summary()))
        .collect();
    Snapshot { counters, gauges, histograms }
}

// ---------------------------------------------------------------------------
// Spans and the JSON-lines trace

/// Where finished spans are appended as JSON lines, once [`trace_to`]
/// has armed it. `None` (the default) makes spans pure histogram
/// feeders with no I/O.
fn trace_sink() -> &'static Mutex<Option<BufWriter<File>>> {
    static SINK: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Arms the JSON-lines trace: every span finished after this call
/// appends one event line to `path` (truncating any previous file).
/// Timestamps are microseconds since the process-wide monotonic
/// origin, so lines sort and diff cleanly.
pub fn trace_to(path: &Path) -> std::io::Result<()> {
    // Pin the origin before the first event so `ts_us` is monotone
    // from the operator's point of view of "when tracing started".
    let _ = origin();
    let file = File::create(path)?;
    *trace_sink().lock().expect("trace sink poisoned") = Some(BufWriter::new(file));
    Ok(())
}

/// Whether a trace file is currently armed.
pub fn trace_enabled() -> bool {
    trace_sink().lock().expect("trace sink poisoned").is_some()
}

/// Flushes any buffered trace lines to disk. Call at end of run;
/// harmless when tracing is off.
pub fn flush_trace() {
    if let Some(writer) = trace_sink().lock().expect("trace sink poisoned").as_mut() {
        let _ = writer.flush();
    }
}

/// Minimal JSON string escaping for trace fields — names and labels
/// are engine-internal identifiers, but a stray quote must not corrupt
/// the line stream.
fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn trace_span_event(name: &str, start_us: u64, dur_us: u64, labels: &[(String, String)]) {
    let mut sink = trace_sink().lock().expect("trace sink poisoned");
    let Some(writer) = sink.as_mut() else { return };
    let mut line = String::with_capacity(96);
    line.push_str("{\"event\": \"span\", \"name\": \"");
    escape_into(&mut line, name);
    line.push_str(&format!("\", \"ts_us\": {start_us}, \"dur_us\": {dur_us}"));
    for (key, value) in labels {
        line.push_str(", \"");
        escape_into(&mut line, key);
        line.push_str("\": \"");
        escape_into(&mut line, value);
        line.push('"');
    }
    line.push_str("}\n");
    // Tracing is best-effort: a full disk must not take the run down.
    let _ = writer.write_all(line.as_bytes());
}

/// An RAII timer. On drop it records its elapsed wall time into the
/// histogram named at construction and, when tracing is armed, appends
/// one JSON trace line.
pub struct Span {
    histogram: Histogram,
    name: &'static str,
    start_us: u64,
    started: Instant,
    labels: Vec<(String, String)>,
}

impl Span {
    /// Attaches a `key = value` label carried into the trace event
    /// (batch number, scenario name, work-unit index, ...). Labels
    /// never affect the histogram — aggregation stays by span name.
    pub fn label(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        // Allocate the label only if it can ever be written.
        if trace_enabled() {
            self.labels.push((key.to_string(), value.to_string()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_us = self.started.elapsed().as_micros() as u64;
        self.histogram.record_micros(dur_us);
        if trace_enabled() {
            trace_span_event(self.name, self.start_us, dur_us, &self.labels);
        }
    }
}

/// Opens a span feeding the histogram (and trace stream) of the given
/// name. The `&'static str` bound keeps the hot path allocation-free;
/// dynamic identifiers belong in [`Span::label`]s, not names.
pub fn span(name: &'static str) -> Span {
    Span {
        histogram: histogram(name),
        name,
        start_us: now_micros(),
        started: Instant::now(),
        labels: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate_by_delta() {
        let c = counter("test.obs.counter");
        c.inc();
        c.add(4);
        assert_eq!(counter("test.obs.counter").value(), 5, "handles share the atomic");

        let g = gauge("test.obs.gauge");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(gauge("test.obs.gauge").value(), 1);
        g.add(-3);
        assert_eq!(g.value(), -2, "gauges are signed");
    }

    #[test]
    fn bucket_math_is_power_of_two_with_pessimistic_bounds() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every sample's bucket bound is >= the sample (pessimistic),
        // within a factor of two below the next power.
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1000, 65_535, 1 << 20] {
            assert!(bucket_bound(bucket_of(v)) >= v, "bound under-reports {v}");
        }
    }

    #[test]
    fn histogram_percentiles_track_the_population() {
        let h = histogram("test.obs.hist");
        // 90 fast samples, 10 slow ones.
        for _ in 0..90 {
            h.record_micros(10);
        }
        for _ in 0..10 {
            h.record_micros(5_000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_us, 5_000);
        assert_eq!(s.sum_us, 90 * 10 + 10 * 5_000);
        // p50 lands in the 10µs bucket [8,16): bound 15.
        assert_eq!(s.p50_us, 15);
        // p90 is the 90th of 100 — still a fast sample.
        assert_eq!(s.p90_us, 15);
        // ...but p-anything above 90 crosses into the slow bucket
        // [4096, 8192): bound 8191.
        assert_eq!(h.percentile(s.count, 95), 8191);
    }

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        let s = histogram("test.obs.empty").summary();
        assert_eq!(
            s,
            HistogramSummary { count: 0, sum_us: 0, p50_us: 0, p90_us: 0, max_us: 0 }
        );
    }

    #[test]
    fn spans_feed_their_histogram() {
        {
            let _span = span("test.obs.span");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = histogram("test.obs.span").summary();
        assert_eq!(s.count, 1);
        assert!(s.max_us >= 2_000, "span under-measured: {}µs", s.max_us);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        counter("test.obs.snap.b").inc();
        counter("test.obs.snap.a").inc();
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let a = names.iter().position(|n| *n == "test.obs.snap.a").expect("a registered");
        let b = names.iter().position(|n| *n == "test.obs.snap.b").expect("b registered");
        assert!(a < b, "snapshot must be name-sorted");
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn trace_lines_are_json_objects_with_labels() {
        let path = std::env::temp_dir()
            .join(format!("chipletqc-obs-trace-{}.jsonl", std::process::id()));
        trace_to(&path).expect("arm trace");
        {
            let _span = span("test.obs.trace").label("unit", 7).label("tag", "a\"b");
        }
        flush_trace();
        // Disarm so other tests (and later span drops) stop writing.
        *trace_sink().lock().unwrap() = None;
        let text = std::fs::read_to_string(&path).expect("trace file");
        let line =
            text.lines().find(|l| l.contains("test.obs.trace")).expect("span event present");
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
        assert!(line.contains("\"event\": \"span\""), "{line}");
        assert!(line.contains("\"dur_us\": "), "{line}");
        assert!(line.contains("\"unit\": \"7\""), "{line}");
        assert!(line.contains("a\\\"b"), "quote must be escaped: {line}");
        let _ = std::fs::remove_file(&path);
    }
}
