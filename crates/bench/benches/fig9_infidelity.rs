//! Criterion bench for the Fig. 9 kernel: the full population
//! comparison (fabricate both architectures, characterize, assemble,
//! compare E_avg) and the incremental cost of a link-ratio sweep with
//! shared caches.

use criterion::{criterion_group, criterion_main, Criterion};

use chipletqc::lab::{Lab, LabConfig};
use chipletqc::prelude::*;

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);

    let spec = McmSpec::new(ChipletSpec::with_qubits(10).unwrap(), 2, 2);
    group.bench_function("cold_compare_2x2_of_10q_batch200", |b| {
        b.iter(|| {
            let lab = Lab::new(LabConfig::quick().with_batch(200));
            lab.compare(&spec)
        })
    });

    group.bench_function("warm_compare_2x2_of_10q", |b| {
        let lab = Lab::new(LabConfig::quick().with_batch(200));
        lab.compare(&spec); // warm the caches
        b.iter(|| lab.compare(&spec))
    });

    group.bench_function("link_ratio_sweep_shares_fabrication", |b| {
        let lab = Lab::new(LabConfig::quick().with_batch(200));
        lab.compare(&spec); // warm shared caches
        b.iter(|| {
            let sibling = lab.with_link_ratio(2.0);
            sibling.compare(&spec)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compare);
criterion_main!(benches);
