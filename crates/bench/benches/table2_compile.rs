//! Criterion bench for the Table II kernel: benchmark generation and
//! critical-path analysis (transpilation itself is timed in the
//! fig10 bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use chipletqc::prelude::*;

fn bench_table2(c: &mut Criterion) {
    let mut gen_group = c.benchmark_group("table2/generate_288q");
    for benchmark in Benchmark::ALL {
        gen_group.bench_with_input(
            BenchmarkId::from_parameter(benchmark.tag()),
            &benchmark,
            |b, benchmark| b.iter(|| benchmark.for_device_qubits(360, Seed(1))),
        );
    }
    gen_group.finish();

    let mut path_group = c.benchmark_group("table2/critical_path");
    let circuit = Benchmark::Adder.for_device_qubits(360, Seed(1));
    path_group
        .bench_function("adder_288_logical", |b| b.iter(|| circuit.two_qubit_critical_path()));
    let primacy = Benchmark::Primacy.for_device_qubits(360, Seed(1));
    path_group.bench_function("primacy_288_logical", |b| b.iter(|| primacy.counts()));
    path_group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
