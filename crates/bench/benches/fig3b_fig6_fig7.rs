//! Criterion bench for the data-synthesis kernels behind Figs. 3(b),
//! 6, and 7: fleet calibration, configuration counting, and the
//! Washington calibration + empirical model build.

use criterion::{criterion_group, criterion_main, Criterion};

use chipletqc::prelude::*;
use chipletqc_assembly::configurations::{fig6_rows, PAPER_CHIPLET_COUNT};
use chipletqc_noise::detuning_model::EmpiricalDetuningModel;
use chipletqc_noise::fleet::{synthesize_fleet, FleetParams};
use chipletqc_noise::washington::paper_calibration;

fn bench_synthesis(c: &mut Criterion) {
    c.bench_function("fig3b/synthesize_fleet_15_cycles", |b| {
        b.iter(|| synthesize_fleet(&FleetParams::paper(), Seed(1)))
    });

    c.bench_function("fig6/configuration_rows", |b| {
        b.iter(|| fig6_rows(PAPER_CHIPLET_COUNT, 7))
    });

    c.bench_function("fig7/synthesize_washington", |b| b.iter(|| paper_calibration(Seed(1))));

    let calibration = paper_calibration(Seed(1));
    c.bench_function("fig7/build_empirical_model", |b| {
        b.iter(|| EmpiricalDetuningModel::from_calibration(&calibration).unwrap())
    });

    let model = EmpiricalDetuningModel::from_calibration(&calibration).unwrap();
    c.bench_function("fig7/assign_1000_edges", |b| {
        b.iter(|| {
            let mut rng = Seed(2).rng();
            (0..1000).map(|i| model.sample(0.05 + (i % 5) as f64 * 0.08, &mut rng)).sum::<f64>()
        })
    });
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
