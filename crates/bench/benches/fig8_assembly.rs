//! Criterion bench for the Fig. 8 kernels: fabrication of the
//! collision-free bin, KGD characterization, and best-first MCM
//! assembly.

use criterion::{criterion_group, criterion_main, Criterion};

use chipletqc::prelude::*;
use chipletqc_yield::monte_carlo::fabricate_collision_free;

fn bench_assembly(c: &mut Criterion) {
    let chiplet = ChipletSpec::with_qubits(20).unwrap();
    let device = chiplet.build();
    let fab = FabricationParams::state_of_the_art();
    let params = CollisionParams::paper();

    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);

    group.bench_function("fabricate_bin_20q_batch200", |b| {
        b.iter(|| fabricate_collision_free(&device, &fab, &params, 200, Seed(1)))
    });

    let raw = fabricate_collision_free(&device, &fab, &params, 200, Seed(1));
    let model = NoiseModel::paper(Seed(2));
    group.bench_function("kgd_characterize_20q", |b| {
        b.iter(|| KgdBin::characterize(&device, raw.clone(), &model, Seed(3)))
    });

    let bin = KgdBin::characterize(&device, raw.clone(), &model, Seed(3));
    let spec = McmSpec::new(chiplet, 3, 3);
    group.bench_function("assemble_3x3_of_20q", |b| {
        b.iter(|| {
            Assembler::new(AssemblyParams::paper()).assemble(
                &spec,
                &bin,
                model.link_model(),
                Seed(4),
            )
        })
    });

    group.bench_function("bond_survival_closed_form", |b| {
        let bond = BondParams::paper();
        b.iter(|| bond.module_survival(200))
    });
    group.finish();
}

criterion_group!(benches, bench_assembly);
criterion_main!(benches);
