//! Ablation benches for the design choices DESIGN.md calls out:
//! layout strategy, CR-direction enforcement, RZ merging, population
//! comparison mode, and per-qubit anharmonicity sampling.

use criterion::{criterion_group, criterion_main, Criterion};

use chipletqc::lab::{ComparisonMode, Lab, LabConfig};
use chipletqc::prelude::*;
use chipletqc_transpile::decompose::merge_rz;
use chipletqc_transpile::layout::LayoutStrategy;
use chipletqc_transpile::routing::RoutingParams;
use chipletqc_yield::monte_carlo::simulate_yield;

fn bench_ablations(c: &mut Criterion) {
    let device = MonolithicSpec::with_qubits(100).unwrap().build();
    let circuit = Benchmark::Ghz.for_device_qubits(100, Seed(1));

    // Layout ablation: snake vs trivial. The report prints swap counts
    // via the fig10 binary; here we time the routing cost.
    let mut layout = c.benchmark_group("ablation/layout");
    layout.sample_size(10);
    for (name, strategy) in
        [("snake", LayoutStrategy::SnakeOrder), ("trivial", LayoutStrategy::Trivial)]
    {
        let t = Transpiler {
            layout: strategy,
            routing: RoutingParams::sabre(),
            enforce_direction: false,
        };
        layout.bench_function(name, |b| b.iter(|| t.transpile(&circuit, &device)));
    }
    layout.finish();

    // Direction enforcement ablation.
    let mut direction = c.benchmark_group("ablation/cr_direction");
    direction.sample_size(10);
    for (name, enforce) in [("free", false), ("enforced", true)] {
        let t = Transpiler { enforce_direction: enforce, ..Transpiler::paper() };
        direction.bench_function(name, |b| b.iter(|| t.transpile(&circuit, &device)));
    }
    direction.finish();

    // RZ merging ablation.
    let compiled = Transpiler::paper().transpile(&circuit, &device);
    c.bench_function("ablation/merge_rz", |b| b.iter(|| merge_rz(&compiled.physical)));

    // Population comparison-mode ablation.
    let mut modes = c.benchmark_group("ablation/comparison_mode");
    modes.sample_size(10);
    let spec = McmSpec::new(ChipletSpec::with_qubits(10).unwrap(), 2, 2);
    for (name, mode) in [
        ("match_mono", ComparisonMode::MatchMonolithicCount),
        ("all_assembled", ComparisonMode::AllAssembled),
    ] {
        modes.bench_function(name, |b| {
            let lab =
                Lab::new(LabConfig { comparison: mode, ..LabConfig::quick().with_batch(200) });
            lab.compare(&spec); // warm
            b.iter(|| lab.compare(&spec))
        });
    }
    modes.finish();

    // Noise-aware layout extension (DESIGN.md §9): placement cost and
    // end-to-end transpile against the default snake layout.
    let mut aware = c.benchmark_group("ablation/noise_aware_layout");
    aware.sample_size(10);
    let mcm = McmSpec::new(ChipletSpec::with_qubits(40).unwrap(), 2, 2).build();
    let noise = chipletqc_noise::assign::EdgeNoise::from_infidelities(
        mcm.edges()
            .iter()
            .map(|e| if e.kind.is_inter_chip() { 0.075 } else { 0.012 })
            .collect(),
    );
    let ghz = Benchmark::Ghz.for_device_qubits(mcm.num_qubits(), Seed(1));
    aware.bench_function("place_only", |b| {
        b.iter(|| {
            chipletqc_transpile::layout::noise_aware_layout(&mcm, &noise, ghz.num_qubits())
        })
    });
    aware.bench_function("transpile_noise_aware", |b| {
        let t = Transpiler::paper();
        b.iter(|| {
            let layout =
                chipletqc_transpile::layout::noise_aware_layout(&mcm, &noise, ghz.num_qubits());
            t.transpile_with_layout(&ghz, &mcm, layout)
        })
    });
    aware.bench_function("transpile_default", |b| {
        let t = Transpiler::paper();
        b.iter(|| t.transpile(&ghz, &mcm))
    });
    aware.finish();

    // Anharmonicity-variation extension: sampling cost with and
    // without per-qubit alpha.
    let mut alpha = c.benchmark_group("ablation/alpha_variation");
    alpha.sample_size(10);
    let chiplet = ChipletSpec::with_qubits(20).unwrap().build();
    for (name, sigma_alpha) in [("fixed_alpha", 0.0), ("sampled_alpha", 0.005)] {
        let fab = FabricationParams::state_of_the_art().with_sigma_alpha(sigma_alpha);
        alpha.bench_function(name, |b| {
            b.iter(|| simulate_yield(&chiplet, &fab, &CollisionParams::paper(), 100, Seed(1)))
        });
    }
    alpha.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
