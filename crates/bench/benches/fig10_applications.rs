//! Criterion bench for the Fig. 10 kernels: SABRE transpilation of the
//! benchmark suite and population ESP scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use chipletqc::prelude::*;
use chipletqc_noise::assign::EdgeNoise;
use chipletqc_transpile::esp::{edge_usage, esp_from_usage, esp_log};

fn bench_applications(c: &mut Criterion) {
    let device = McmSpec::new(ChipletSpec::with_qubits(40).unwrap(), 2, 2).build();
    let transpiler = Transpiler::paper();

    let mut group = c.benchmark_group("fig10/transpile_160q");
    group.sample_size(10);
    for benchmark in [Benchmark::Ghz, Benchmark::Bv, Benchmark::Qaoa, Benchmark::Primacy] {
        let circuit = benchmark.for_device_qubits(device.num_qubits(), Seed(1));
        group.bench_with_input(
            BenchmarkId::from_parameter(benchmark.tag()),
            &circuit,
            |b, circuit| b.iter(|| transpiler.transpile(circuit, &device)),
        );
    }
    group.finish();

    let mut scoring = c.benchmark_group("fig10/esp_scoring");
    let circuit = Benchmark::Adder.for_device_qubits(device.num_qubits(), Seed(1));
    let compiled = transpiler.transpile(&circuit, &device);
    let noise = EdgeNoise::from_infidelities(vec![0.012; device.edges().len()]);
    scoring.bench_function("esp_direct_adder_160q", |b| {
        b.iter(|| esp_log(&compiled.physical, &device, &noise))
    });
    let usage = edge_usage(&compiled.physical, &device);
    scoring.bench_function("esp_from_usage_adder_160q", |b| {
        b.iter(|| esp_from_usage(&usage, &noise))
    });
    scoring.finish();
}

criterion_group!(benches, bench_applications);
criterion_main!(benches);
