//! Criterion bench for the Fig. 4 kernel: Monte Carlo collision-free
//! yield, with the analytic estimator as a baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use chipletqc::prelude::*;
use chipletqc_yield::analytic::analytic_yield;
use chipletqc_yield::monte_carlo::simulate_yield;

fn bench_yield(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/monte_carlo_yield");
    group.sample_size(10);
    let fab = FabricationParams::state_of_the_art();
    let params = CollisionParams::paper();
    for qubits in [20usize, 100, 500] {
        let device = MonolithicSpec::with_qubits(qubits).unwrap().build();
        group.bench_with_input(BenchmarkId::new("batch100", qubits), &device, |b, device| {
            b.iter(|| simulate_yield(device, &fab, &params, 100, Seed(1)))
        });
    }
    group.finish();

    let mut single = c.benchmark_group("fig4/single_device");
    let device = MonolithicSpec::with_qubits(100).unwrap().build();
    single.bench_function("fabricate_and_check_100q", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = Seed(i).rng();
            let freqs = fab.sample(&device, &mut rng);
            chipletqc_collision::checker::is_collision_free(&device, &freqs, &params)
        })
    });
    single.bench_function("analytic_yield_100q", |b| {
        b.iter(|| analytic_yield(&device, &fab, &params))
    });
    single.finish();
}

criterion_group!(benches, bench_yield);
criterion_main!(benches);
