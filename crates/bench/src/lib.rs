//! Benchmark harness for the `chipletqc` reproduction.
//!
//! Two kinds of targets live here:
//!
//! * **regeneration binaries** (`src/bin/fig*.rs`, `table2.rs`,
//!   `output_gain.rs`, `headline.rs`, `all_figures.rs`) — print the
//!   rows/series of every table and figure in the paper's evaluation.
//!   Each accepts `--quick` for a reduced-scale run; the default is the
//!   paper-scale configuration. `all_figures` writes everything under
//!   `target/figures/`.
//! * **Criterion benches** (`benches/*.rs`) — time the computational
//!   kernels (Monte Carlo yield, KGD + assembly, population comparison,
//!   transpilation, ESP scoring) plus the ablation variants DESIGN.md
//!   calls out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Run scale for regeneration binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced batches/systems; seconds per figure.
    Quick,
    /// The paper's batches and system sets.
    Paper,
}

impl Scale {
    /// Parses the scale from process arguments (`--quick`) or the
    /// `CHIPLETQC_SCALE` environment variable (`quick`/`paper`).
    pub fn from_env() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            return Scale::Quick;
        }
        match std::env::var("CHIPLETQC_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Paper,
        }
    }

    /// Whether this is the reduced scale.
    pub fn is_quick(self) -> bool {
        self == Scale::Quick
    }
}

/// Prints a standard header for a regeneration binary.
pub fn banner(figure: &str, scale: Scale) {
    println!(
        "chipletqc :: {figure} ({})",
        if scale.is_quick() { "quick scale" } else { "paper scale" }
    );
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_default_is_paper() {
        // No --quick in the test harness args; env var may be unset.
        if std::env::var("CHIPLETQC_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Paper);
        }
        assert!(Scale::Quick.is_quick());
        assert!(!Scale::Paper.is_quick());
    }
}
