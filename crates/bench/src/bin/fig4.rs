//! Regenerates Fig. 4: collision-free yield vs. qubits across
//! detuning steps and fabrication precisions.

use chipletqc::experiments::fig4::{run, Fig4Config};
use chipletqc_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 4 - yield vs qubits (steps 0.04-0.07, three sigma_f)", scale);
    let config = if scale.is_quick() { Fig4Config::quick() } else { Fig4Config::paper() };
    let data = run(&config);
    print!("{}", data.render());
    for sigma in [0.1323, 0.014, 0.006] {
        println!("optimal step at sigma_f={sigma}: {:.2} GHz", data.optimal_step(sigma));
    }
    println!("(paper: 0.06 GHz maximizes yield; F = 5.0/5.06/5.12 GHz adopted)");
}
