//! Regenerates Fig. 8: monolithic vs. MCM yield and the headline
//! yield-improvement averages.

use chipletqc::experiments::fig8::{run, Fig8Config};
use chipletqc_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 8 - yield vs qubits, monolithic vs MCM", scale);
    let config = if scale.is_quick() { Fig8Config::quick() } else { Fig8Config::paper() };
    let data = run(&config);
    print!("{}", data.render());
    if let Some(cliff) = data.monolithic_cliff() {
        println!("\nlargest size with nonzero monolithic yield: {cliff} qubits");
        println!("(paper: monolithic devices >~400 qubits are unfeasible)");
    }
}
