//! Regenerates Fig. 3(b): fleet CX-infidelity box plots.

use chipletqc::experiments::fig3b::{run, Fig3bConfig};
use chipletqc_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 3(b) - CX infidelity across three IBM generations", scale);
    let data = run(&Fig3bConfig::paper());
    print!("{}", data.render());
    println!(
        "\nmedian increases with size: {} (paper: yes)",
        data.median_increases_with_size()
    );
}
