//! Regenerates Table II: compiled-benchmark gate composition.

use chipletqc::experiments::table2::{run, Table2Config};
use chipletqc_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Table II - compiled benchmark details (2x2 systems)", scale);
    let config = if scale.is_quick() { Table2Config::quick() } else { Table2Config::paper() };
    print!("{}", run(&config).render());
}
