//! Regenerates Fig. 10: per-benchmark fidelity-product ratios across
//! all systems (a) and square systems (b).

use chipletqc::experiments::fig10::{run, Fig10Config};
use chipletqc_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 10 - benchmark fidelity: MCM vs monolithic", scale);
    let config = if scale.is_quick() { Fig10Config::quick() } else { Fig10Config::paper() };
    let data = run(&config);
    println!("--- (a) all systems ---");
    print!("{}", data.render());
    println!("--- (b) square systems ---");
    print!("{}", data.squares().render());
}
