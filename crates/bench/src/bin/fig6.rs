//! Regenerates Fig. 6: MCM configuration counts and assembly bounds.

use chipletqc::experiments::fig6::{run, Fig6Config};
use chipletqc_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 6 - configurations and assembled-module bounds", scale);
    let config = if scale.is_quick() { Fig6Config::quick() } else { Fig6Config::paper() };
    let data = run(&config);
    print!("{}", data.render());
    println!("\n(paper: 69,421/100,000 collision-free 20q chiplets)");
}
