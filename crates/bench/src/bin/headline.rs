//! Regenerates the abstract's headline numbers from the Fig. 8 and
//! Fig. 9 datasets (and optionally Fig. 10 at paper scale).

use chipletqc::experiments::headline::Headline;
use chipletqc::experiments::{fig10, fig8, fig9};
use chipletqc_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Headline claims (abstract)", scale);
    let (f8, f9, f10) = if scale.is_quick() {
        (fig8::run(&fig8::Fig8Config::quick()), fig9::run(&fig9::Fig9Config::quick()), None)
    } else {
        (
            fig8::run(&fig8::Fig8Config::paper()),
            fig9::run(&fig9::Fig9Config::paper()),
            Some(fig10::run(&fig10::Fig10Config::paper())),
        )
    };
    let headline = Headline::from_data(&f8, &f9, f10.as_ref());
    print!("{}", headline.render());
}
