//! Regenerates the Section V-C / Eq. 1 fabrication-output example.

use chipletqc::experiments::output_gain::{run, OutputGainConfig};
use chipletqc_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Section V-C / Eq. 1 - fabrication output, MCM vs monolithic", scale);
    let config =
        if scale.is_quick() { OutputGainConfig::quick() } else { OutputGainConfig::paper() };
    print!("{}", run(&config).render());
}
