//! Regenerates Fig. 7: CX infidelity vs. qubit-qubit detuning.

use chipletqc::experiments::fig7::{run, Fig7Config};
use chipletqc_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 7 - CX infidelity vs detuning (Washington stand-in)", scale);
    let data = run(&Fig7Config::paper());
    print!("{}", data.render());
}
