//! Regenerates every table and figure, writing the output under
//! `target/figures/`.

use std::fs;
use std::path::PathBuf;

use chipletqc::experiments::headline::Headline;
use chipletqc::experiments::*;
use chipletqc_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("all figures", scale);
    let dir = PathBuf::from("target/figures");
    fs::create_dir_all(&dir).expect("create target/figures");
    let quick = scale.is_quick();

    let save = |name: &str, contents: String| {
        let path = dir.join(name);
        fs::write(&path, &contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {} ({} bytes)", path.display(), contents.len());
    };

    save(
        "fig3b.txt",
        fig3b::run(&fig3b::Fig3bConfig::paper()).render(),
    );
    let f4cfg = if quick { fig4::Fig4Config::quick() } else { fig4::Fig4Config::paper() };
    save("fig4.txt", fig4::run(&f4cfg).render());
    let f6cfg = if quick { fig6::Fig6Config::quick() } else { fig6::Fig6Config::paper() };
    save("fig6.txt", fig6::run(&f6cfg).render());
    save("fig7.txt", fig7::run(&fig7::Fig7Config::paper()).render());
    let f8cfg = if quick { fig8::Fig8Config::quick() } else { fig8::Fig8Config::paper() };
    let f8 = fig8::run(&f8cfg);
    save("fig8.txt", f8.render());
    let f9cfg = if quick { fig9::Fig9Config::quick() } else { fig9::Fig9Config::paper() };
    let f9 = fig9::run(&f9cfg);
    save("fig9.txt", f9.render());
    let f10cfg = if quick { fig10::Fig10Config::quick() } else { fig10::Fig10Config::paper() };
    let f10 = fig10::run(&f10cfg);
    save("fig10a.txt", f10.render());
    save("fig10b.txt", f10.squares().render());
    let t2cfg = if quick { table2::Table2Config::quick() } else { table2::Table2Config::paper() };
    save("table2.txt", table2::run(&t2cfg).render());
    let ogcfg = if quick {
        output_gain::OutputGainConfig::quick()
    } else {
        output_gain::OutputGainConfig::paper()
    };
    save("output_gain.txt", output_gain::run(&ogcfg).render());
    save(
        "headline.txt",
        Headline::from_data(&f8, &f9, Some(&f10)).render(),
    );
    println!("done.");
}
