//! Regenerates every table and figure by delegating to the
//! `chipletqc-engine` scenario scheduler, writing the output under
//! `target/figures/`.
//!
//! The figures run as one parallel scenario batch with shared
//! fabrication/characterization caches; artifacts and the
//! `run_report.json` are bit-identical for any worker count
//! (`CHIPLETQC_WORKERS` or `--workers N`).

use std::fs;
use std::path::PathBuf;

use chipletqc::lab::CacheHub;
use chipletqc_bench::{banner, Scale};
use chipletqc_engine::report::{timing_summary, RunReport};
use chipletqc_engine::scheduler::Scheduler;
use chipletqc_engine::suite::paper_suite;

fn workers_from_env() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--workers" {
            let value = args.next().unwrap_or_else(|| {
                eprintln!("error: --workers needs a value");
                std::process::exit(2);
            });
            return Some(value.parse().unwrap_or_else(|_| {
                eprintln!("error: bad --workers {value}");
                std::process::exit(2);
            }));
        }
    }
    std::env::var("CHIPLETQC_WORKERS").ok().and_then(|v| v.parse().ok())
}

fn main() {
    let scale = Scale::from_env();
    banner("all figures", scale);
    let dir = PathBuf::from("target/figures");
    fs::create_dir_all(&dir).expect("create target/figures");

    let engine_scale = if scale.is_quick() {
        chipletqc_engine::scenario::Scale::Quick
    } else {
        chipletqc_engine::scenario::Scale::Paper
    };
    let scheduler = workers_from_env().map_or_else(Scheduler::default, Scheduler::new);
    let suite = paper_suite(engine_scale);

    let hub = CacheHub::new();
    let results = scheduler.run(&suite, &hub);
    let report = RunReport::from_results(
        &results,
        hub.fabrication_stats(),
        hub.store_stats(),
        hub.peer_stats(),
    );
    print!("{}", timing_summary(&results, scheduler.workers()));

    for (name, contents) in report.artifacts() {
        let path = dir.join(name);
        fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {} ({} bytes)", path.display(), contents.len());
    }
    let path = dir.join("run_report.json");
    let json = report.to_json();
    fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {} ({} bytes)", path.display(), json.len());
    println!("done.");
}
