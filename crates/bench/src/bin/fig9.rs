//! Regenerates Fig. 9: E_avg ratio heatmaps across link-error ratios.

use chipletqc::experiments::fig9::{run, Fig9Config};
use chipletqc_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 9 - Eavg(MCM)/Eavg(mono) heatmaps", scale);
    let config = if scale.is_quick() { Fig9Config::quick() } else { Fig9Config::paper() };
    let data = run(&config);
    print!("{}", data.render());
    if let Some(best) = data.panels.first().and_then(|p| p.best_ratio()) {
        println!("best ratio at state-of-the-art links: {best:.3} (paper: 0.815)");
    }
}
