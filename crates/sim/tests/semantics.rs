//! Semantic validation of the benchmark generators.
//!
//! The paper's evaluation treats benchmarks as structural workloads,
//! but a reproduction is only as good as its inputs: these tests prove
//! on small instances that each generator means what it claims.

use chipletqc_benchmarks::adder::{adder_circuit, AdderLayout};
use chipletqc_benchmarks::bitcode::{bitcode_circuit, BitCodeLayout};
use chipletqc_benchmarks::bv::{bv_circuit, seeded_secret};
use chipletqc_benchmarks::ghz::ghz_circuit;
use chipletqc_benchmarks::hamiltonian::{tfim_circuit, TfimParams};
use chipletqc_benchmarks::qaoa::{qaoa_circuit, QaoaParams};
use chipletqc_circuit::circuit::Circuit;
use chipletqc_circuit::qubit::Qubit;
use chipletqc_sim::state::State;

/// BV must put exactly the hidden string on the data qubits.
#[test]
fn bv_recovers_every_secret_on_5_qubits() {
    let n = 5;
    for bits in 0..(1u32 << (n - 1)) {
        let secret: Vec<bool> = (0..n - 1).map(|i| bits >> i & 1 == 1).collect();
        let state = State::run(&bv_circuit(n, &secret));
        for (i, &bit) in secret.iter().enumerate() {
            let p1 = state.prob_one(Qubit(i as u32));
            let expected = if bit { 1.0 } else { 0.0 };
            assert!(
                (p1 - expected).abs() < 1e-9,
                "secret {bits:04b}: data qubit {i} reads {p1}"
            );
        }
    }
}

#[test]
fn bv_random_secret_at_larger_width() {
    let n = 11;
    let secret = seeded_secret(n - 1, 77);
    let state = State::run(&bv_circuit(n, &secret));
    for (i, &bit) in secret.iter().enumerate() {
        let p1 = state.prob_one(Qubit(i as u32));
        assert!((p1 - if bit { 1.0 } else { 0.0 }).abs() < 1e-9);
    }
}

/// GHZ must produce the two-spike distribution.
#[test]
fn ghz_prepares_cat_state() {
    for n in [2usize, 5, 10] {
        let state = State::run(&ghz_circuit(n));
        let probs = state.probabilities();
        let all_ones = (1usize << n) - 1;
        assert!((probs[0] - 0.5).abs() < 1e-9, "n={n}");
        assert!((probs[all_ones] - 0.5).abs() < 1e-9, "n={n}");
        let rest: f64 = probs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 0 && *i != all_ones)
            .map(|(_, p)| p)
            .sum();
        assert!(rest < 1e-9, "n={n}");
    }
}

/// The Cuccaro adder must compute b <- a + b for every 3-bit input
/// pair.
#[test]
fn cuccaro_adds_exhaustively_3_bits() {
    let bits = 3;
    let layout = AdderLayout { bits };
    let circuit = adder_circuit(bits);
    for a in 0..8usize {
        for b in 0..8usize {
            // Prepare |a, b> in the interleaved layout.
            let mut basis = 0usize;
            for i in 0..bits {
                if a >> i & 1 == 1 {
                    basis |= 1 << layout.a(i).0;
                }
                if b >> i & 1 == 1 {
                    basis |= 1 << layout.b(i).0;
                }
            }
            let mut state = State::basis(layout.num_qubits(), basis);
            state.apply_circuit(&circuit);
            // Read the sum from the b register + carry out.
            let mut sum = 0usize;
            for i in 0..bits {
                if state.prob_one(layout.b(i)) > 0.5 {
                    sum |= 1 << i;
                }
            }
            if state.prob_one(layout.carry_out()) > 0.5 {
                sum |= 1 << bits;
            }
            assert_eq!(sum, a + b, "{a} + {b}");
            // The a register must be restored (in-place adder).
            let mut a_out = 0usize;
            for i in 0..bits {
                if state.prob_one(layout.a(i)) > 0.5 {
                    a_out |= 1 << i;
                }
            }
            assert_eq!(a_out, a, "operand register clobbered");
        }
    }
}

/// The bit-code syndrome must be silent on clean runs and fire the
/// correct ancillas on injected errors.
#[test]
fn bitcode_syndrome_detects_injected_flips() {
    let data = 5;
    let layout = BitCodeLayout { data };
    // Clean: all ancillas read 0.
    let clean = State::run(&bitcode_circuit(data, &[]));
    for i in 0..data - 1 {
        assert!(clean.prob_one(layout.ancilla(i)) < 1e-9, "clean ancilla {i}");
    }
    // A flip on data qubit 2 fires ancillas 1 and 2 (its two
    // stabilizers).
    let dirty = State::run(&bitcode_circuit(data, &[2]));
    for i in 0..data - 1 {
        let expected = if i == 1 || i == 2 { 1.0 } else { 0.0 };
        assert!((dirty.prob_one(layout.ancilla(i)) - expected).abs() < 1e-9, "ancilla {i}");
    }
    // An edge flip (data 0) fires only ancilla 0.
    let edge = State::run(&bitcode_circuit(data, &[0]));
    assert!((edge.prob_one(layout.ancilla(0)) - 1.0).abs() < 1e-9);
    for i in 1..data - 1 {
        assert!(edge.prob_one(layout.ancilla(i)) < 1e-9);
    }
}

/// One TFIM Trotter step must be unitary and agree with the exact
/// two-site propagator structure at small angles.
#[test]
fn tfim_step_is_unitary_and_nontrivial() {
    let c = tfim_circuit(6, &TfimParams::paper());
    let state = State::run(&c);
    assert!((state.norm() - 1.0).abs() < 1e-9);
    // A transverse field rotates away from |000000>.
    assert!(state.probabilities()[0] < 0.999);
}

/// QAOA on the 2-vertex path at (γ, β) must match the closed form for
/// the MaxCut expectation. With this workspace's conventions
/// (`RZZ(γ) = exp(−iγ/2 Z⊗Z)`, `RX(β) = exp(−iβ/2 X)`) the single-edge
/// expectation is `<C> = 1/2 (1 − sin(2β) sin(γ))` (a γ-sign
/// reparameterization of the textbook form).
#[test]
fn qaoa_two_qubit_closed_form() {
    for (gamma, beta) in [(0.8, 0.4), (0.3, 1.1), (1.4, 0.2), (-0.8, 0.4)] {
        let params = QaoaParams { layers: vec![(gamma, beta)] };
        let state = State::run(&qaoa_circuit(2, &params));
        let probs = state.probabilities();
        // Cut value is 1 for |01> and |10>, 0 otherwise.
        let expectation = probs[0b01] + probs[0b10];
        let closed = 0.5 * (1.0 - (2.0 * beta).sin() * gamma.sin());
        assert!(
            (expectation - closed).abs() < 1e-9,
            "gamma={gamma} beta={beta}: {expectation} vs {closed}"
        );
    }
}

/// Measurement gates are transparent to the statevector but preserved
/// in circuits.
#[test]
fn measurements_do_not_disturb_simulation() {
    let mut with = Circuit::new(2);
    with.h(Qubit(0)).measure(Qubit(0)).cx(Qubit(0), Qubit(1));
    let mut without = Circuit::new(2);
    without.h(Qubit(0)).cx(Qubit(0), Qubit(1));
    assert!(State::run(&with).approx_eq_global_phase(&State::run(&without), 1e-12));
}

/// The adder built from our explicit CCX decomposition must match a
/// reference Toffoli truth table.
#[test]
fn ccx_decomposition_truth_table() {
    use chipletqc_benchmarks::adder::ccx;
    for input in 0..8usize {
        let mut c = Circuit::new(3);
        ccx(&mut c, Qubit(0), Qubit(1), Qubit(2));
        let mut state = State::basis(3, input);
        state.apply_circuit(&c);
        let expected = if input & 0b011 == 0b011 { input ^ 0b100 } else { input };
        let p = state.probabilities();
        assert!(
            (p[expected] - 1.0).abs() < 1e-9,
            "input {input:03b}: expected {expected:03b}, probs {p:?}"
        );
    }
}

/// Gate identity spot-check: RZZ via CX·RZ·CX equals the native RZZ.
#[test]
fn rzz_identity() {
    let theta = 0.9;
    let mut native = Circuit::new(2);
    native.h(Qubit(0)).h(Qubit(1)).rzz(Qubit(0), Qubit(1), theta);
    let mut expanded = Circuit::new(2);
    expanded
        .h(Qubit(0))
        .h(Qubit(1))
        .cx(Qubit(0), Qubit(1))
        .rz(Qubit(1), theta)
        .cx(Qubit(0), Qubit(1));
    assert!(State::run(&native).approx_eq_global_phase(&State::run(&expanded), 1e-10));
}
