//! Dense statevector simulation.
//!
//! The validation substrate of the workspace: a small (≤ ~20 qubit)
//! Schrödinger-style simulator used by the test suites to prove the
//! benchmark generators and the transpiler's decompositions are
//! *semantically* correct — BV really recovers its hidden string, GHZ
//! really prepares `(|0…0⟩+|1…1⟩)/√2`, the Cuccaro adder really adds,
//! the bit-code syndrome really fires on injected errors, and
//! `H = RZ(π/2)·SX·RZ(π/2)` really holds (up to global phase).
//!
//! The paper's own evaluation never simulates states ("the structures
//! we evaluate surpass the capacity of today's most powerful quantum
//! simulators"); this crate exists so the reproduction's *inputs* are
//! trustworthy, not to score architectures.
//!
//! # Example
//!
//! ```
//! use chipletqc_sim::state::State;
//! use chipletqc_benchmarks::ghz::ghz_circuit;
//!
//! let state = State::run(&ghz_circuit(3));
//! let probs = state.probabilities();
//! assert!((probs[0b000] - 0.5).abs() < 1e-10);
//! assert!((probs[0b111] - 0.5).abs() < 1e-10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod state;

pub use complex::Complex;
pub use state::State;
