//! Minimal complex arithmetic.
//!
//! Hand-rolled rather than pulling in `num-complex`: the simulator
//! needs only add/mul/scale/conj/norm.

/// A complex number `re + i·im`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + i·im`.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn from_polar_unit(theta: f64) -> Complex {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Complex {
        Complex { re: self.re * s, im: self.im * s }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl std::ops::Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}i", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
    }

    #[test]
    fn norms() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.scale(2.0), Complex::new(6.0, 8.0));
    }

    #[test]
    fn polar() {
        let z = Complex::from_polar_unit(std::f64::consts::FRAC_PI_2);
        assert!((z - Complex::I).abs() < 1e-12);
        assert!((Complex::I * Complex::I + Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1.0000-1.0000i");
    }
}
