//! The statevector and gate application.
//!
//! Basis-state indexing is little-endian: qubit `q`'s bit is
//! `(index >> q) & 1`, so `|q1 q0⟩ = |10⟩` is index 2.

use rand::Rng;

use chipletqc_circuit::circuit::Circuit;
use chipletqc_circuit::gate::Gate;
use chipletqc_circuit::qubit::Qubit;

use crate::complex::Complex;

use std::f64::consts::FRAC_1_SQRT_2;

/// Hard cap on simulated width (2^24 amplitudes ≈ 256 MiB).
pub const MAX_QUBITS: usize = 24;

/// A dense `n`-qubit statevector.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    num_qubits: usize,
    amps: Vec<Complex>,
}

impl State {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > MAX_QUBITS`.
    pub fn zero(num_qubits: usize) -> State {
        assert!(
            num_qubits <= MAX_QUBITS,
            "{num_qubits} qubits exceeds the {MAX_QUBITS}-qubit simulator cap"
        );
        let mut amps = vec![Complex::ZERO; 1 << num_qubits];
        amps[0] = Complex::ONE;
        State { num_qubits, amps }
    }

    /// A computational basis state `|bits⟩` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `bits >= 2^num_qubits` or the width exceeds the cap.
    pub fn basis(num_qubits: usize, bits: usize) -> State {
        let mut state = State::zero(num_qubits);
        assert!(bits < state.amps.len(), "basis state {bits} out of range");
        state.amps[0] = Complex::ZERO;
        state.amps[bits] = Complex::ONE;
        state
    }

    /// Runs `circuit` from `|0…0⟩`, ignoring measurements.
    pub fn run(circuit: &Circuit) -> State {
        let mut state = State::zero(circuit.num_qubits());
        state.apply_circuit(circuit);
        state
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude of basis state `bits`.
    pub fn amplitude(&self, bits: usize) -> Complex {
        self.amps[bits]
    }

    /// All `2^n` basis-state probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// The probability that qubit `q` reads 1.
    pub fn prob_one(&self, q: Qubit) -> f64 {
        let mask = 1usize << q.0;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Total norm (should stay 1 under unitary evolution).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// The fidelity `|⟨other|self⟩|²` with another state.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn fidelity(&self, other: &State) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits, "state width mismatch");
        let inner = self
            .amps
            .iter()
            .zip(&other.amps)
            .fold(Complex::ZERO, |acc, (a, b)| acc + b.conj() * *a);
        inner.norm_sqr()
    }

    /// Samples one measurement outcome of all qubits (the state is not
    /// collapsed).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut u: f64 = rng.gen();
        for (i, a) in self.amps.iter().enumerate() {
            u -= a.norm_sqr();
            if u <= 0.0 {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// Applies every gate of `circuit` in order (measurements are
    /// no-ops).
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(circuit.num_qubits() <= self.num_qubits, "circuit wider than state");
        for gate in circuit.gates() {
            self.apply(gate);
        }
    }

    /// Applies one gate.
    pub fn apply(&mut self, gate: &Gate) {
        match *gate {
            Gate::Rz { q, theta } => {
                let phase0 = Complex::from_polar_unit(-theta / 2.0);
                let phase1 = Complex::from_polar_unit(theta / 2.0);
                self.apply_diagonal_1q(q, phase0, phase1);
            }
            Gate::Sx { q } => {
                let half = 0.5;
                let a = Complex::new(half, half);
                let b = Complex::new(half, -half);
                self.apply_1q(q, [[a, b], [b, a]]);
            }
            Gate::X { q } => {
                self.apply_1q(
                    q,
                    [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
                );
            }
            Gate::H { q } => {
                let h = Complex::new(FRAC_1_SQRT_2, 0.0);
                self.apply_1q(q, [[h, h], [h, -h]]);
            }
            Gate::Rx { q, theta } => {
                let c = Complex::new((theta / 2.0).cos(), 0.0);
                let s = Complex::new(0.0, -(theta / 2.0).sin());
                self.apply_1q(q, [[c, s], [s, c]]);
            }
            Gate::Ry { q, theta } => {
                let c = Complex::new((theta / 2.0).cos(), 0.0);
                let s = (theta / 2.0).sin();
                self.apply_1q(q, [[c, Complex::new(-s, 0.0)], [Complex::new(s, 0.0), c]]);
            }
            Gate::Cx { control, target } => self.apply_cx(control, target),
            Gate::Swap { a, b } => {
                self.apply_cx(a, b);
                self.apply_cx(b, a);
                self.apply_cx(a, b);
            }
            Gate::Rzz { a, b, theta } => {
                let same = Complex::from_polar_unit(-theta / 2.0);
                let diff = Complex::from_polar_unit(theta / 2.0);
                let (ma, mb) = (1usize << a.0, 1usize << b.0);
                for (i, amp) in self.amps.iter_mut().enumerate() {
                    let parity = ((i & ma != 0) as u8) ^ ((i & mb != 0) as u8);
                    *amp = *amp * if parity == 0 { same } else { diff };
                }
            }
            Gate::Measure { .. } => {}
        }
    }

    /// Applies a 1-qubit unitary `[[m00, m01], [m10, m11]]` to `q`.
    fn apply_1q(&mut self, q: Qubit, m: [[Complex; 2]; 2]) {
        let mask = 1usize << q.0;
        for i in 0..self.amps.len() {
            if i & mask == 0 {
                let j = i | mask;
                let (a0, a1) = (self.amps[i], self.amps[j]);
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Applies a diagonal 1-qubit unitary.
    fn apply_diagonal_1q(&mut self, q: Qubit, d0: Complex, d1: Complex) {
        let mask = 1usize << q.0;
        for (i, amp) in self.amps.iter_mut().enumerate() {
            *amp = *amp * if i & mask == 0 { d0 } else { d1 };
        }
    }

    fn apply_cx(&mut self, control: Qubit, target: Qubit) {
        let (mc, mt) = (1usize << control.0, 1usize << target.0);
        for i in 0..self.amps.len() {
            if i & mc != 0 && i & mt == 0 {
                let j = i | mt;
                self.amps.swap(i, j);
            }
        }
    }

    /// Whether the two states are equal up to a global phase, within
    /// `tol` per amplitude.
    pub fn approx_eq_global_phase(&self, other: &State, tol: f64) -> bool {
        if self.num_qubits != other.num_qubits {
            return false;
        }
        // Find the largest amplitude to anchor the phase.
        let (anchor, _) = self
            .amps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
            .expect("non-empty state");
        if other.amps[anchor].abs() < 1e-12 {
            return false;
        }
        // phase = self[anchor] / other[anchor]
        let denom = other.amps[anchor].norm_sqr();
        let phase = self.amps[anchor] * other.amps[anchor].conj().scale(1.0 / denom);
        self.amps.iter().zip(&other.amps).all(|(a, b)| (*a - phase * *b).abs() < tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipletqc_math::rng::Seed;

    #[test]
    fn zero_state_and_basis() {
        let s = State::zero(3);
        assert_eq!(s.amplitude(0), Complex::ONE);
        assert_eq!(s.probabilities()[0], 1.0);
        let b = State::basis(3, 5);
        assert_eq!(b.amplitude(5), Complex::ONE);
        assert_eq!(b.prob_one(Qubit(0)), 1.0);
        assert_eq!(b.prob_one(Qubit(1)), 0.0);
        assert_eq!(b.prob_one(Qubit(2)), 1.0);
    }

    #[test]
    fn x_flips() {
        let mut c = Circuit::new(2);
        c.x(Qubit(1));
        let s = State::run(&c);
        assert!((s.amplitude(0b10).abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn h_creates_superposition() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0));
        let s = State::run(&c);
        assert!((s.prob_one(Qubit(0)) - 0.5).abs() < 1e-12);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cx_entangles() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).cx(Qubit(0), Qubit(1));
        let s = State::run(&c);
        let p = s.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01] < 1e-12 && p[0b10] < 1e-12);
    }

    #[test]
    fn sx_squared_is_x() {
        let mut via_sx = Circuit::new(1);
        via_sx.sx(Qubit(0)).sx(Qubit(0));
        let mut via_x = Circuit::new(1);
        via_x.x(Qubit(0));
        let a = State::run(&via_sx);
        let b = State::run(&via_x);
        assert!(a.approx_eq_global_phase(&b, 1e-10));
    }

    #[test]
    fn h_decomposition_identity() {
        use std::f64::consts::FRAC_PI_2;
        // H = RZ(pi/2) SX RZ(pi/2) up to global phase, on a
        // non-trivial input state.
        let mut direct = Circuit::new(1);
        direct.ry(Qubit(0), 0.7).h(Qubit(0));
        let mut decomposed = Circuit::new(1);
        decomposed
            .ry(Qubit(0), 0.7)
            .rz(Qubit(0), FRAC_PI_2)
            .sx(Qubit(0))
            .rz(Qubit(0), FRAC_PI_2);
        assert!(State::run(&direct).approx_eq_global_phase(&State::run(&decomposed), 1e-10));
    }

    #[test]
    fn swap_exchanges() {
        let mut c = Circuit::new(2);
        c.x(Qubit(0)).swap(Qubit(0), Qubit(1));
        let s = State::run(&c);
        assert!((s.amplitude(0b10).abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rzz_phases_by_parity() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).h(Qubit(1)).rzz(Qubit(0), Qubit(1), std::f64::consts::PI);
        let s = State::run(&c);
        // RZZ(pi) on |++> leaves a Bell-like state; probabilities stay
        // uniform but phases differ by parity.
        let p = s.probabilities();
        for prob in p {
            assert!((prob - 0.25).abs() < 1e-12);
        }
        let same = s.amplitude(0b00);
        let diff = s.amplitude(0b01);
        assert!((same + diff).abs() < 1e-10, "opposite phases expected");
    }

    #[test]
    fn unitarity_preserved_on_random_circuit() {
        use chipletqc_benchmarks::primacy::{primacy_circuit, PrimacyParams};
        let c = primacy_circuit(8, &PrimacyParams { cycles: 12 }, Seed(5));
        let s = State::run(&c);
        assert!((s.norm() - 1.0).abs() < 1e-9);
        // The state should be scrambled: no basis state dominates.
        let max = s.probabilities().into_iter().fold(0.0, f64::max);
        assert!(max < 0.5, "max prob {max}");
    }

    #[test]
    fn sampling_follows_distribution() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0));
        let s = State::run(&c);
        let mut rng = Seed(1).rng();
        let ones: usize = (0..2000).map(|_| s.sample(&mut rng)).sum();
        assert!(ones > 850 && ones < 1150, "ones {ones}");
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0)).cx(Qubit(0), Qubit(1)).ry(Qubit(2), 0.3);
        let a = State::run(&c);
        let b = State::run(&c);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        let zero = State::zero(3);
        assert!(a.fidelity(&zero) < 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn width_cap_enforced() {
        State::zero(MAX_QUBITS + 1);
    }
}
