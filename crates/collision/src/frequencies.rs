//! Fabricated frequency assignments.
//!
//! A [`Frequencies`] value is the *outcome of fabrication* for one
//! device: the actual operating frequency `f_i` and anharmonicity `α_i`
//! of every qubit. The yield crate produces these by sampling around a
//! device's ideal plan; [`Frequencies::ideal`] produces the zero-variation
//! reference assignment.

use chipletqc_math::codec::{ByteReader, ByteWriter, Codec, CodecError};
use chipletqc_topology::device::Device;
use chipletqc_topology::plan::FrequencyPlan;
use chipletqc_topology::qubit::QubitId;

/// Per-qubit fabricated frequencies and anharmonicities (GHz).
#[derive(Debug, Clone, PartialEq)]
pub struct Frequencies {
    freqs: Vec<f64>,
    alphas: Vec<f64>,
}

/// Error constructing a [`Frequencies`] assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrequenciesError {
    /// Frequency and anharmonicity vectors disagree in length.
    LengthMismatch {
        /// Number of frequencies supplied.
        freqs: usize,
        /// Number of anharmonicities supplied.
        alphas: usize,
    },
    /// A value was NaN or infinite.
    NonFinite,
}

impl std::fmt::Display for FrequenciesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrequenciesError::LengthMismatch { freqs, alphas } => {
                write!(f, "{freqs} frequencies but {alphas} anharmonicities")
            }
            FrequenciesError::NonFinite => write!(f, "frequencies must be finite"),
        }
    }
}

impl std::error::Error for FrequenciesError {}

impl Frequencies {
    /// Creates an assignment from per-qubit frequencies and
    /// anharmonicities.
    ///
    /// # Errors
    ///
    /// Returns an error if the vectors differ in length or contain
    /// non-finite values.
    pub fn new(freqs: Vec<f64>, alphas: Vec<f64>) -> Result<Frequencies, FrequenciesError> {
        if freqs.len() != alphas.len() {
            return Err(FrequenciesError::LengthMismatch {
                freqs: freqs.len(),
                alphas: alphas.len(),
            });
        }
        if freqs.iter().chain(alphas.iter()).any(|x| !x.is_finite()) {
            return Err(FrequenciesError::NonFinite);
        }
        Ok(Frequencies { freqs, alphas })
    }

    /// Creates an assignment with one shared anharmonicity (the paper
    /// fixes `α = −0.330 GHz` for all qubits).
    ///
    /// # Errors
    ///
    /// Returns an error on non-finite inputs.
    pub fn with_uniform_alpha(
        freqs: Vec<f64>,
        alpha: f64,
    ) -> Result<Frequencies, FrequenciesError> {
        let n = freqs.len();
        Frequencies::new(freqs, vec![alpha; n])
    }

    /// The ideal (zero fabrication variation) assignment of `device`
    /// under `plan`: every qubit sits exactly on its class frequency.
    pub fn ideal(device: &Device, plan: &FrequencyPlan) -> Frequencies {
        let freqs = device.qubits().map(|q| plan.ideal(device.class(q))).collect();
        let n = device.num_qubits();
        Frequencies { freqs, alphas: vec![plan.anharmonicity(); n] }
    }

    /// The fabricated frequency of `q` in GHz.
    pub fn freq(&self, q: QubitId) -> f64 {
        self.freqs[q.index()]
    }

    /// The anharmonicity of `q` in GHz (negative).
    pub fn alpha(&self, q: QubitId) -> f64 {
        self.alphas[q.index()]
    }

    /// Number of qubits covered.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Whether the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// The absolute qubit-qubit detuning `|f_a − f_b|` in GHz — the
    /// x-axis of the paper's Fig. 7 fidelity relationship.
    pub fn detuning(&self, a: QubitId, b: QubitId) -> f64 {
        (self.freq(a) - self.freq(b)).abs()
    }

    /// All frequencies as a slice (qubit-id order).
    pub fn as_slice(&self) -> &[f64] {
        &self.freqs
    }

    /// All anharmonicities as a slice (qubit-id order).
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }
}

/// Binary persistence for the result store: frequencies then
/// anharmonicities, each as a length-prefixed `f64` slice. Decoding
/// re-validates through [`Frequencies::new`], so a corrupted entry
/// (length mismatch, non-finite bits) is an error, never a bad value.
impl Codec for Frequencies {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64_slice(&self.freqs);
        w.put_f64_slice(&self.alphas);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Frequencies, CodecError> {
        let freqs = r.get_f64_vec()?;
        let alphas = r.get_f64_vec()?;
        Frequencies::new(freqs, alphas).map_err(|e| CodecError::Invalid(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipletqc_topology::family::ChipletSpec;
    use chipletqc_topology::qubit::FrequencyClass;

    #[test]
    fn rejects_mismatched_lengths() {
        assert_eq!(
            Frequencies::new(vec![5.0, 5.06], vec![-0.33]).unwrap_err(),
            FrequenciesError::LengthMismatch { freqs: 2, alphas: 1 }
        );
    }

    #[test]
    fn rejects_non_finite() {
        assert_eq!(
            Frequencies::with_uniform_alpha(vec![5.0, f64::NAN], -0.33).unwrap_err(),
            FrequenciesError::NonFinite
        );
        assert!(Frequencies::with_uniform_alpha(vec![5.0], f64::INFINITY).is_err());
    }

    #[test]
    fn ideal_matches_classes() {
        let device = ChipletSpec::with_qubits(20).unwrap().build();
        let plan = FrequencyPlan::state_of_the_art();
        let freqs = Frequencies::ideal(&device, &plan);
        assert_eq!(freqs.len(), 20);
        for q in device.qubits() {
            let expected = match device.class(q) {
                FrequencyClass::F0 => 5.0,
                FrequencyClass::F1 => 5.06,
                FrequencyClass::F2 => 5.12,
            };
            assert!((freqs.freq(q) - expected).abs() < 1e-12);
            assert_eq!(freqs.alpha(q), -0.330);
        }
    }

    #[test]
    fn detuning_is_absolute() {
        let freqs = Frequencies::with_uniform_alpha(vec![5.0, 5.12], -0.33).unwrap();
        assert!((freqs.detuning(QubitId(0), QubitId(1)) - 0.12).abs() < 1e-12);
        assert!((freqs.detuning(QubitId(1), QubitId(0)) - 0.12).abs() < 1e-12);
    }

    #[test]
    fn accessors() {
        let freqs = Frequencies::with_uniform_alpha(vec![5.0, 5.06], -0.3).unwrap();
        assert_eq!(freqs.as_slice(), &[5.0, 5.06]);
        assert_eq!(freqs.alphas(), &[-0.3, -0.3]);
        assert!(!freqs.is_empty());
        assert!(Frequencies::with_uniform_alpha(vec![], -0.3).unwrap().is_empty());
    }

    #[test]
    fn codec_round_trips_and_rejects_corruption() {
        use chipletqc_math::codec::{decode_from_slice, encode_to_vec};
        let freqs =
            Frequencies::new(vec![5.0, 5.061234567891234], vec![-0.33, -0.331]).unwrap();
        let bytes = encode_to_vec(&freqs);
        assert_eq!(decode_from_slice::<Frequencies>(&bytes).unwrap(), freqs);
        // Truncation is an error.
        assert!(decode_from_slice::<Frequencies>(&bytes[..bytes.len() - 1]).is_err());
        // A NaN bit pattern fails validation.
        let mut bad = bytes.clone();
        bad[8..16].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(decode_from_slice::<Frequencies>(&bad).is_err());
    }
}
