//! Frequency-collision criteria and device checking.
//!
//! Implements Table I of *Scaling Superconducting Quantum Computers with
//! Chiplet Architectures* (MICRO 2022): the seven fixed-frequency
//! transmon collision conditions that bound cross-resonance gate error
//! from frequency-related noise to ≲ 1 %. A fabricated device is
//! **collision-free** iff none of the seven criteria fire anywhere on the
//! device; collision-free yield is the fraction of a fabrication batch
//! that passes (Section IV-B).
//!
//! * [`frequencies`] — a device's fabricated frequency/anharmonicity
//!   assignment, plus ideal (design-target) assignments from a
//!   [`chipletqc_topology::plan::FrequencyPlan`];
//! * [`criteria`] — the seven criteria as pure predicates over
//!   frequencies, with the paper's thresholds as defaults and every
//!   threshold parameterizable;
//! * [`checker`] — whole-device checking: early-exit collision-free
//!   tests for the Monte Carlo hot path and full reports for analysis.
//!
//! # Example
//!
//! ```
//! use chipletqc_topology::family::ChipletSpec;
//! use chipletqc_topology::plan::FrequencyPlan;
//! use chipletqc_collision::checker::is_collision_free;
//! use chipletqc_collision::criteria::CollisionParams;
//! use chipletqc_collision::frequencies::Frequencies;
//!
//! let device = ChipletSpec::with_qubits(20).unwrap().build();
//! let plan = FrequencyPlan::state_of_the_art();
//! // A device fabricated with *perfect* precision lands exactly on the
//! // ideal plan and is collision-free by design.
//! let freqs = Frequencies::ideal(&device, &plan);
//! assert!(is_collision_free(&device, &freqs, &CollisionParams::paper()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod criteria;
pub mod frequencies;

pub use checker::{count_by_type, find_collisions, is_collision_free, CollisionReport};
pub use criteria::{Collision, CollisionParams, CollisionType};
pub use frequencies::Frequencies;
