//! Whole-device collision checking.
//!
//! Quantifies the Table I criteria over a device: types 1–4 over every
//! coupled pair (with the CR orientation the device defines), and types
//! 5–7 over every control with two targets. [`is_collision_free`] is the
//! early-exit predicate on the Monte Carlo hot path of the yield
//! simulations (Figs. 4 and 8); [`find_collisions`] produces full
//! reports for the per-type analysis.

use chipletqc_topology::device::Device;
use chipletqc_topology::qubit::QubitId;

use crate::criteria::{
    type1, type2, type3, type4, type5, type6, type7, Collision, CollisionParams, CollisionType,
};
use crate::frequencies::Frequencies;

/// Asserts the assignment covers the device (cheap; indexes would panic
/// later anyway, but the message is clearer here).
fn check_len(device: &Device, freqs: &Frequencies) {
    assert_eq!(
        device.num_qubits(),
        freqs.len(),
        "frequency assignment covers {} qubits but device {} has {}",
        freqs.len(),
        device.name(),
        device.num_qubits()
    );
}

/// Whether the fabricated device has **no** Table I collision.
///
/// This is the paper's batch-classification predicate: "If all seven
/// criteria return false, a QC is categorized as collision-free."
///
/// # Panics
///
/// Panics if `freqs` does not cover the device.
pub fn is_collision_free(
    device: &Device,
    freqs: &Frequencies,
    params: &CollisionParams,
) -> bool {
    check_len(device, freqs);
    for e in device.edges() {
        let (c, t) = (e.control, e.target());
        if type1(freqs, e.a, e.b, params)
            || type2(freqs, c, t, params)
            || type3(freqs, e.a, e.b, params)
            || type4(freqs, c, t, params)
        {
            return false;
        }
    }
    for i in device.qubits() {
        let targets = device.targets_of(i);
        for (jx, &j) in targets.iter().enumerate() {
            for &k in &targets[jx + 1..] {
                if type5(freqs, j, k, params)
                    || type6(freqs, j, k, params)
                    || type7(freqs, i, j, k, params)
                {
                    return false;
                }
            }
        }
    }
    true
}

/// A full collision report for one fabricated device.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CollisionReport {
    /// Every collision found, in device scan order.
    pub collisions: Vec<Collision>,
}

impl CollisionReport {
    /// Whether the device is collision-free.
    pub fn is_collision_free(&self) -> bool {
        self.collisions.is_empty()
    }

    /// Collision counts indexed by Table I row − 1.
    pub fn counts_by_type(&self) -> [usize; 7] {
        let mut counts = [0; 7];
        for c in &self.collisions {
            counts[(c.collision_type.table_row() - 1) as usize] += 1;
        }
        counts
    }

    /// The distinct qubits involved in any collision.
    pub fn affected_qubits(&self) -> Vec<QubitId> {
        let mut qs: Vec<QubitId> =
            self.collisions.iter().flat_map(|c| c.qubits.clone()).collect();
        qs.sort_unstable();
        qs.dedup();
        qs
    }
}

impl std::fmt::Display for CollisionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.collisions.is_empty() {
            return write!(f, "collision-free");
        }
        let counts = self.counts_by_type();
        write!(f, "{} collisions (", self.collisions.len())?;
        let mut first = true;
        for (i, n) in counts.iter().enumerate() {
            if *n > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "T{}: {}", i + 1, n)?;
                first = false;
            }
        }
        write!(f, ")")
    }
}

/// Finds every Table I collision on the device.
///
/// # Panics
///
/// Panics if `freqs` does not cover the device.
pub fn find_collisions(
    device: &Device,
    freqs: &Frequencies,
    params: &CollisionParams,
) -> CollisionReport {
    check_len(device, freqs);
    let mut collisions = Vec::new();
    let mut push = |ty: CollisionType, qubits: Vec<QubitId>| {
        collisions.push(Collision { collision_type: ty, qubits });
    };
    for e in device.edges() {
        let (c, t) = (e.control, e.target());
        if type1(freqs, e.a, e.b, params) {
            push(CollisionType::NearResonantNeighbors, vec![e.a, e.b]);
        }
        if type2(freqs, c, t, params) {
            push(CollisionType::HalfAnharmonicityTarget, vec![c, t]);
        }
        if type3(freqs, e.a, e.b, params) {
            push(CollisionType::AnharmonicityNeighbors, vec![e.a, e.b]);
        }
        if type4(freqs, c, t, params) {
            push(CollisionType::OutsideStraddlingRegime, vec![c, t]);
        }
    }
    for i in device.qubits() {
        let targets = device.targets_of(i);
        for (jx, &j) in targets.iter().enumerate() {
            for &k in &targets[jx + 1..] {
                if type5(freqs, j, k, params) {
                    push(CollisionType::SharedTargetsResonant, vec![i, j, k]);
                }
                if type6(freqs, j, k, params) {
                    push(CollisionType::SharedTargetsAnharmonicity, vec![i, j, k]);
                }
                if type7(freqs, i, j, k, params) {
                    push(CollisionType::TwoPhotonProcess, vec![i, j, k]);
                }
            }
        }
    }
    CollisionReport { collisions }
}

/// Collision counts by type, without materializing the report.
pub fn count_by_type(
    device: &Device,
    freqs: &Frequencies,
    params: &CollisionParams,
) -> [usize; 7] {
    find_collisions(device, freqs, params).counts_by_type()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipletqc_topology::evalset::paper_mcms;
    use chipletqc_topology::family::{ChipletSpec, MonolithicSpec};
    use chipletqc_topology::plan::FrequencyPlan;

    fn paper_params() -> CollisionParams {
        CollisionParams::paper()
    }

    #[test]
    fn ideal_chiplets_are_collision_free() {
        let plan = FrequencyPlan::state_of_the_art();
        for spec in ChipletSpec::catalog() {
            let device = spec.build();
            let freqs = Frequencies::ideal(&device, &plan);
            assert!(
                is_collision_free(&device, &freqs, &paper_params()),
                "{spec}: {}",
                find_collisions(&device, &freqs, &paper_params())
            );
        }
    }

    #[test]
    fn ideal_monolithics_are_collision_free() {
        let plan = FrequencyPlan::state_of_the_art();
        for q in [5, 100, 495, 1000] {
            let device = MonolithicSpec::with_qubits(q).unwrap().build();
            let freqs = Frequencies::ideal(&device, &plan);
            assert!(is_collision_free(&device, &freqs, &paper_params()), "mono-{q}");
        }
    }

    #[test]
    fn ideal_mcms_are_collision_free_including_links() {
        let plan = FrequencyPlan::state_of_the_art();
        for spec in paper_mcms().iter().step_by(9) {
            let device = spec.build();
            let freqs = Frequencies::ideal(&device, &plan);
            assert!(
                is_collision_free(&device, &freqs, &paper_params()),
                "{spec}: {}",
                find_collisions(&device, &freqs, &paper_params())
            );
        }
    }

    #[test]
    fn all_fig4_step_sizes_are_nominally_collision_free() {
        // The Fig. 4 sweep only makes sense if every step size in
        // [0.04, 0.07] is collision-free at zero variation.
        let device = ChipletSpec::with_qubits(20).unwrap().build();
        for step in [0.04, 0.05, 0.06, 0.07] {
            let plan = FrequencyPlan::with_step(step);
            let freqs = Frequencies::ideal(&device, &plan);
            assert!(
                is_collision_free(&device, &freqs, &paper_params()),
                "step {step}: {}",
                find_collisions(&device, &freqs, &paper_params())
            );
        }
    }

    #[test]
    fn near_null_neighbor_is_detected_as_type1_and_5() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let plan = FrequencyPlan::state_of_the_art();
        let mut raw: Vec<f64> = Frequencies::ideal(&device, &plan).as_slice().to_vec();
        // Find an F2 control with two targets and set the targets equal.
        let control = device
            .qubits()
            .find(|q| device.targets_of(*q).len() == 2)
            .expect("10q chiplet has 2-target controls");
        let targets = device.targets_of(control).to_vec();
        raw[targets[1].index()] = raw[targets[0].index()];
        let freqs = Frequencies::with_uniform_alpha(raw, plan.anharmonicity()).unwrap();
        let report = find_collisions(&device, &freqs, &paper_params());
        assert!(!report.is_collision_free());
        let counts = report.counts_by_type();
        assert!(counts[4] > 0, "expected a Type 5: {report}");
        assert!(!report.affected_qubits().is_empty());
        assert!(!is_collision_free(&device, &freqs, &paper_params()));
    }

    #[test]
    fn raised_target_breaks_straddling() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let plan = FrequencyPlan::state_of_the_art();
        let mut raw: Vec<f64> = Frequencies::ideal(&device, &plan).as_slice().to_vec();
        let edge = &device.edges()[0];
        // Push the target above its control: Type 4.
        raw[edge.target().index()] = raw[edge.control.index()] + 0.01;
        let freqs = Frequencies::with_uniform_alpha(raw, plan.anharmonicity()).unwrap();
        let report = find_collisions(&device, &freqs, &paper_params());
        assert!(report.counts_by_type()[3] > 0, "{report}");
    }

    #[test]
    fn report_display_summarizes_counts() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let plan = FrequencyPlan::state_of_the_art();
        let freqs = Frequencies::ideal(&device, &plan);
        assert_eq!(
            find_collisions(&device, &freqs, &paper_params()).to_string(),
            "collision-free"
        );
    }

    #[test]
    #[should_panic(expected = "covers")]
    fn mismatched_assignment_panics() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let freqs = Frequencies::with_uniform_alpha(vec![5.0; 3], -0.33).unwrap();
        let _ = is_collision_free(&device, &freqs, &paper_params());
    }

    #[test]
    fn count_by_type_matches_report() {
        let device = ChipletSpec::with_qubits(20).unwrap().build();
        let plan = FrequencyPlan::with_step(0.015); // inside the Type 1 window
        let freqs = Frequencies::ideal(&device, &plan);
        let report = find_collisions(&device, &freqs, &paper_params());
        assert_eq!(report.counts_by_type(), count_by_type(&device, &freqs, &paper_params()));
        assert!(!report.is_collision_free());
    }

    #[test]
    fn tight_step_collides_via_type1() {
        // Step 0.015 < 0.017 window: every F2-F1 and F2-F0 second-step
        // detuning is 0.015/0.03; the 0.015 ones are Type 1 collisions.
        let device = ChipletSpec::with_qubits(20).unwrap().build();
        let freqs = Frequencies::ideal(&device, &FrequencyPlan::with_step(0.015));
        let counts = count_by_type(&device, &freqs, &paper_params());
        assert!(counts[0] > 0);
    }
}
