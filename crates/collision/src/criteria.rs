//! The seven collision criteria of Table I.
//!
//! Each criterion bounds a physical mechanism that degrades the
//! cross-resonance gate when fixed-frequency transmon frequencies land
//! too close to a resonance condition:
//!
//! | Type | Condition | Threshold (GHz) | Scope |
//! |---|---|---|---|
//! | 1 | `f_i = f_j` | ±0.017 | nearest neighbors |
//! | 2 | `f_i + α_i/2 = f_j` | ±0.004 | control `i`, target `j` |
//! | 3 | `f_i = f_j + α_j` | ±0.030 | nearest neighbors (either order) |
//! | 4 | `f_j < f_i + α_i` or `f_i < f_j` | — | control `i`, target `j` (straddling regime) |
//! | 5 | `f_j = f_k` | ±0.017 | `i` controls both `j` and `k` |
//! | 6 | `f_j = f_k + α_k` or `f_j + α_j = f_k` | ±0.025 | `i` controls both `j` and `k` |
//! | 7 | `2 f_i + α_i = f_j + f_k` | ±0.017 | `i` controls both `j` and `k` |
//!
//! The predicates here are pure functions of frequencies; whole-device
//! quantification lives in [`crate::checker`].

use chipletqc_topology::qubit::QubitId;

use crate::frequencies::Frequencies;

/// One of the seven Table I collision mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CollisionType {
    /// Type 1: nearest neighbors near-resonant ("near-null" detuning).
    NearResonantNeighbors,
    /// Type 2: target degenerate with the control's `|0⟩→|2⟩`/2
    /// two-photon transition (`f_i + α_i/2`).
    HalfAnharmonicityTarget,
    /// Type 3: neighbor resonant with the other's `|1⟩→|2⟩` transition
    /// (`f_j + α_j`).
    AnharmonicityNeighbors,
    /// Type 4: target outside the straddling regime
    /// (`f_i + α_i < f_j < f_i` violated).
    OutsideStraddlingRegime,
    /// Type 5: two targets of one control near-resonant with each other.
    SharedTargetsResonant,
    /// Type 6: one target resonant with the other target's `|1⟩→|2⟩`
    /// transition.
    SharedTargetsAnharmonicity,
    /// Type 7: two-photon process `2 f_i + α_i = f_j + f_k` across a
    /// control and its two targets.
    TwoPhotonProcess,
}

impl CollisionType {
    /// All seven types in Table I order.
    pub const ALL: [CollisionType; 7] = [
        CollisionType::NearResonantNeighbors,
        CollisionType::HalfAnharmonicityTarget,
        CollisionType::AnharmonicityNeighbors,
        CollisionType::OutsideStraddlingRegime,
        CollisionType::SharedTargetsResonant,
        CollisionType::SharedTargetsAnharmonicity,
        CollisionType::TwoPhotonProcess,
    ];

    /// The Table I row number (1–7).
    pub fn table_row(self) -> u8 {
        match self {
            CollisionType::NearResonantNeighbors => 1,
            CollisionType::HalfAnharmonicityTarget => 2,
            CollisionType::AnharmonicityNeighbors => 3,
            CollisionType::OutsideStraddlingRegime => 4,
            CollisionType::SharedTargetsResonant => 5,
            CollisionType::SharedTargetsAnharmonicity => 6,
            CollisionType::TwoPhotonProcess => 7,
        }
    }

    /// The type with Table I row number `row` (1-based).
    pub fn from_table_row(row: u8) -> Option<CollisionType> {
        CollisionType::ALL.get(row.checked_sub(1)? as usize).copied()
    }
}

impl std::fmt::Display for CollisionType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Type {}", self.table_row())
    }
}

/// The collision thresholds (GHz), defaulting to Table I.
///
/// All thresholds are half-widths of the forbidden window around the
/// resonance condition. [`CollisionParams::scaled`] shrinks or widens
/// every window at once, modeling future improvements in CR calibration
/// (the paper's "parameterized … to model future improvements" design
/// goal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionParams {
    /// Type 1 window (paper: 0.017).
    pub t1: f64,
    /// Type 2 window (paper: 0.004).
    pub t2: f64,
    /// Type 3 window (paper: 0.030).
    pub t3: f64,
    /// Type 5 window (paper: 0.017).
    pub t5: f64,
    /// Type 6 window (paper: 0.025).
    pub t6: f64,
    /// Type 7 window (paper: 0.017).
    pub t7: f64,
    /// Whether the Type 4 straddling-regime check is enforced (no
    /// numeric threshold in Table I).
    pub enforce_straddling: bool,
}

impl CollisionParams {
    /// The Table I thresholds.
    pub fn paper() -> CollisionParams {
        CollisionParams {
            t1: 0.017,
            t2: 0.004,
            t3: 0.030,
            t5: 0.017,
            t6: 0.025,
            t7: 0.017,
            enforce_straddling: true,
        }
    }

    /// Every window scaled by `factor` (> 0). `factor < 1` models
    /// improved gate calibration tolerating tighter detunings.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> CollisionParams {
        assert!(factor.is_finite() && factor > 0.0, "scale factor must be positive");
        CollisionParams {
            t1: self.t1 * factor,
            t2: self.t2 * factor,
            t3: self.t3 * factor,
            t5: self.t5 * factor,
            t6: self.t6 * factor,
            t7: self.t7 * factor,
            enforce_straddling: self.enforce_straddling,
        }
    }
}

impl Default for CollisionParams {
    fn default() -> Self {
        CollisionParams::paper()
    }
}

/// A detected collision: the mechanism and the qubits involved.
///
/// Types 1–4 involve an edge (`control`/`a` and one other qubit); types
/// 5–7 involve a control and both of its targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Collision {
    /// The Table I mechanism.
    pub collision_type: CollisionType,
    /// The qubits involved, control (or first neighbor) first.
    pub qubits: Vec<QubitId>,
}

impl std::fmt::Display for Collision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on", self.collision_type)?;
        for q in &self.qubits {
            write!(f, " {q}")?;
        }
        Ok(())
    }
}

/// Type 1: neighbors `a`, `b` near-resonant.
pub fn type1(freqs: &Frequencies, a: QubitId, b: QubitId, params: &CollisionParams) -> bool {
    (freqs.freq(a) - freqs.freq(b)).abs() <= params.t1
}

/// Type 2: target `t` degenerate with control `c`'s half-anharmonicity
/// point `f_c + α_c/2`.
pub fn type2(freqs: &Frequencies, c: QubitId, t: QubitId, params: &CollisionParams) -> bool {
    (freqs.freq(c) + freqs.alpha(c) / 2.0 - freqs.freq(t)).abs() <= params.t2
}

/// Type 3: either neighbor resonant with the other's `|1⟩→|2⟩`
/// transition (checked in both orders, since Table I scopes this to the
/// undirected neighbor pair).
pub fn type3(freqs: &Frequencies, a: QubitId, b: QubitId, params: &CollisionParams) -> bool {
    (freqs.freq(a) - (freqs.freq(b) + freqs.alpha(b))).abs() <= params.t3
        || (freqs.freq(b) - (freqs.freq(a) + freqs.alpha(a))).abs() <= params.t3
}

/// Type 4: target `t` outside control `c`'s straddling regime
/// `(f_c + α_c, f_c)`.
pub fn type4(freqs: &Frequencies, c: QubitId, t: QubitId, params: &CollisionParams) -> bool {
    if !params.enforce_straddling {
        return false;
    }
    let (fc, ft) = (freqs.freq(c), freqs.freq(t));
    ft < fc + freqs.alpha(c) || fc < ft
}

/// Type 5: targets `j`, `k` of one control near-resonant.
pub fn type5(freqs: &Frequencies, j: QubitId, k: QubitId, params: &CollisionParams) -> bool {
    (freqs.freq(j) - freqs.freq(k)).abs() <= params.t5
}

/// Type 6: target `j` resonant with target `k`'s `|1⟩→|2⟩` transition,
/// in either direction.
pub fn type6(freqs: &Frequencies, j: QubitId, k: QubitId, params: &CollisionParams) -> bool {
    (freqs.freq(j) - (freqs.freq(k) + freqs.alpha(k))).abs() <= params.t6
        || (freqs.freq(j) + freqs.alpha(j) - freqs.freq(k)).abs() <= params.t6
}

/// Type 7: two-photon process `2 f_i + α_i = f_j + f_k` across control
/// `i` and targets `j`, `k`.
pub fn type7(
    freqs: &Frequencies,
    i: QubitId,
    j: QubitId,
    k: QubitId,
    params: &CollisionParams,
) -> bool {
    (2.0 * freqs.freq(i) + freqs.alpha(i) - (freqs.freq(j) + freqs.freq(k))).abs() <= params.t7
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALPHA: f64 = -0.330;

    fn freqs3(f: [f64; 3]) -> Frequencies {
        Frequencies::with_uniform_alpha(f.to_vec(), ALPHA).unwrap()
    }

    const Q0: QubitId = QubitId(0);
    const Q1: QubitId = QubitId(1);
    const Q2: QubitId = QubitId(2);

    #[test]
    fn type1_window() {
        let p = CollisionParams::paper();
        assert!(type1(&freqs3([5.0, 5.016, 0.0]), Q0, Q1, &p));
        assert!(type1(&freqs3([5.0, 5.0169, 0.0]), Q0, Q1, &p)); // just inside the window
        assert!(!type1(&freqs3([5.0, 5.018, 0.0]), Q0, Q1, &p));
        assert!(!type1(&freqs3([5.0, 5.06, 0.0]), Q0, Q1, &p)); // nominal step is safe
    }

    #[test]
    fn type2_window() {
        let p = CollisionParams::paper();
        // Control at 5.12: half-anharmonicity point at 5.12 - 0.165 = 4.955.
        assert!(type2(&freqs3([5.12, 4.955, 0.0]), Q0, Q1, &p));
        assert!(type2(&freqs3([5.12, 4.9585, 0.0]), Q0, Q1, &p));
        assert!(!type2(&freqs3([5.12, 4.9651, 0.0]), Q0, Q1, &p));
        // Nominal F2 -> F0 (5.12 control, 5.0 target): gap 0.045, safe.
        assert!(!type2(&freqs3([5.12, 5.0, 0.0]), Q0, Q1, &p));
    }

    #[test]
    fn type3_window_both_directions() {
        let p = CollisionParams::paper();
        // f_a near f_b + alpha: 5.06 - 0.33 = 4.73.
        assert!(type3(&freqs3([4.73, 5.06, 0.0]), Q0, Q1, &p));
        assert!(type3(&freqs3([4.755, 5.06, 0.0]), Q0, Q1, &p));
        assert!(!type3(&freqs3([4.765, 5.06, 0.0]), Q0, Q1, &p));
        // Symmetric direction.
        assert!(type3(&freqs3([5.06, 4.73, 0.0]), Q0, Q1, &p));
        // Nominal neighbors are safe.
        assert!(!type3(&freqs3([5.12, 5.06, 0.0]), Q0, Q1, &p));
    }

    #[test]
    fn type4_straddling_regime() {
        let p = CollisionParams::paper();
        // Control 5.12: straddle is (4.79, 5.12).
        assert!(!type4(&freqs3([5.12, 5.0, 0.0]), Q0, Q1, &p));
        assert!(type4(&freqs3([5.12, 5.13, 0.0]), Q0, Q1, &p)); // target above control
        assert!(type4(&freqs3([5.12, 4.78, 0.0]), Q0, Q1, &p)); // below f_c + alpha
        let off = CollisionParams { enforce_straddling: false, ..p };
        assert!(!type4(&freqs3([5.12, 5.13, 0.0]), Q0, Q1, &off));
    }

    #[test]
    fn type5_window() {
        let p = CollisionParams::paper();
        assert!(type5(&freqs3([0.0, 5.0, 5.01]), Q1, Q2, &p));
        assert!(!type5(&freqs3([0.0, 5.0, 5.06]), Q1, Q2, &p));
    }

    #[test]
    fn type6_window_both_directions() {
        let p = CollisionParams::paper();
        // f_j near f_k + alpha: 5.0 - 0.33 = 4.67.
        assert!(type6(&freqs3([0.0, 4.67, 5.0]), Q1, Q2, &p));
        assert!(type6(&freqs3([0.0, 5.0, 4.67]), Q1, Q2, &p));
        assert!(type6(&freqs3([0.0, 4.694, 5.0]), Q1, Q2, &p));
        assert!(!type6(&freqs3([0.0, 4.696, 5.0]), Q1, Q2, &p));
        assert!(!type6(&freqs3([0.0, 5.0, 5.06]), Q1, Q2, &p));
    }

    #[test]
    fn type7_window() {
        let p = CollisionParams::paper();
        // 2*5.12 - 0.33 = 9.91; targets summing near 9.91 collide.
        assert!(type7(&freqs3([5.12, 4.95, 4.96]), Q0, Q1, Q2, &p));
        assert!(type7(&freqs3([5.12, 4.90, 5.026]), Q0, Q1, Q2, &p));
        assert!(!type7(&freqs3([5.12, 5.0, 5.06]), Q0, Q1, Q2, &p)); // nominal: sum 10.06
    }

    #[test]
    fn nominal_plan_clears_all_criteria() {
        // F2 control 5.12 with F0 (5.0) and F1 (5.06) targets: the
        // paper's optimum plan must be collision-free with zero
        // variation.
        let p = CollisionParams::paper();
        let f = freqs3([5.12, 5.0, 5.06]);
        assert!(!type1(&f, Q0, Q1, &p) && !type1(&f, Q0, Q2, &p));
        assert!(!type2(&f, Q0, Q1, &p) && !type2(&f, Q0, Q2, &p));
        assert!(!type3(&f, Q0, Q1, &p) && !type3(&f, Q0, Q2, &p));
        assert!(!type4(&f, Q0, Q1, &p) && !type4(&f, Q0, Q2, &p));
        assert!(!type5(&f, Q1, Q2, &p));
        assert!(!type6(&f, Q1, Q2, &p));
        assert!(!type7(&f, Q0, Q1, Q2, &p));
    }

    #[test]
    fn scaled_params_shrink_windows() {
        let p = CollisionParams::paper().scaled(0.5);
        assert!((p.t1 - 0.0085).abs() < 1e-12);
        assert!((p.t2 - 0.002).abs() < 1e-12);
        // A detuning that collides at paper thresholds passes at half.
        assert!(!type1(&freqs3([5.0, 5.012, 0.0]), Q0, Q1, &p));
        assert!(type1(&freqs3([5.0, 5.012, 0.0]), Q0, Q1, &CollisionParams::paper()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero() {
        let _ = CollisionParams::paper().scaled(0.0);
    }

    #[test]
    fn table_row_roundtrip() {
        for t in CollisionType::ALL {
            assert_eq!(CollisionType::from_table_row(t.table_row()), Some(t));
        }
        assert_eq!(CollisionType::from_table_row(0), None);
        assert_eq!(CollisionType::from_table_row(8), None);
        assert_eq!(CollisionType::NearResonantNeighbors.to_string(), "Type 1");
    }

    #[test]
    fn collision_display() {
        let c = Collision {
            collision_type: CollisionType::TwoPhotonProcess,
            qubits: vec![Q0, Q1, Q2],
        };
        assert_eq!(c.to_string(), "Type 7 on Q0 Q1 Q2");
    }
}
