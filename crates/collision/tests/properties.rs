//! Property tests for the collision criteria and checker.

use proptest::prelude::*;

use chipletqc_collision::checker::{find_collisions, is_collision_free};
use chipletqc_collision::criteria::{type1, type3, type5, type6, CollisionParams};
use chipletqc_collision::frequencies::Frequencies;
use chipletqc_topology::family::ChipletSpec;
use chipletqc_topology::plan::FrequencyPlan;
use chipletqc_topology::qubit::QubitId;

proptest! {
    /// The fast predicate and the full report always agree.
    #[test]
    fn predicate_matches_report(seed_offsets in prop::collection::vec(-0.05f64..0.05, 20)) {
        let device = ChipletSpec::with_qubits(20).unwrap().build();
        let plan = FrequencyPlan::state_of_the_art();
        let base = Frequencies::ideal(&device, &plan);
        let perturbed: Vec<f64> = base
            .as_slice()
            .iter()
            .zip(&seed_offsets)
            .map(|(f, d)| f + d)
            .collect();
        let freqs = Frequencies::with_uniform_alpha(perturbed, plan.anharmonicity()).unwrap();
        let params = CollisionParams::paper();
        let report = find_collisions(&device, &freqs, &params);
        prop_assert_eq!(is_collision_free(&device, &freqs, &params), report.is_collision_free());
        let total: usize = report.counts_by_type().iter().sum();
        prop_assert_eq!(total, report.collisions.len());
    }

    /// Symmetric criteria are symmetric in their qubit arguments.
    #[test]
    fn pair_criteria_are_symmetric(fa in 4.5f64..5.5, fb in 4.5f64..5.5) {
        let freqs = Frequencies::with_uniform_alpha(vec![fa, fb], -0.33).unwrap();
        let p = CollisionParams::paper();
        let (a, b) = (QubitId(0), QubitId(1));
        prop_assert_eq!(type1(&freqs, a, b, &p), type1(&freqs, b, a, &p));
        prop_assert_eq!(type3(&freqs, a, b, &p), type3(&freqs, b, a, &p));
        prop_assert_eq!(type5(&freqs, a, b, &p), type5(&freqs, b, a, &p));
        prop_assert_eq!(type6(&freqs, a, b, &p), type6(&freqs, b, a, &p));
    }

    /// A global frequency translation never changes any verdict (the
    /// criteria depend only on detunings; the paper: "although detuning
    /// between frequencies is important, absolute values are not").
    #[test]
    fn criteria_are_translation_invariant(
        offsets in prop::collection::vec(-0.08f64..0.08, 10),
        shift in -0.5f64..0.5,
    ) {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let plan = FrequencyPlan::state_of_the_art();
        let base: Vec<f64> = Frequencies::ideal(&device, &plan)
            .as_slice()
            .iter()
            .zip(&offsets)
            .map(|(f, d)| f + d)
            .collect();
        let shifted: Vec<f64> = base.iter().map(|f| f + shift).collect();
        let p = CollisionParams::paper();
        let a = find_collisions(
            &device,
            &Frequencies::with_uniform_alpha(base, -0.33).unwrap(),
            &p,
        );
        let b = find_collisions(
            &device,
            &Frequencies::with_uniform_alpha(shifted, -0.33).unwrap(),
            &p,
        );
        prop_assert_eq!(a.counts_by_type(), b.counts_by_type());
    }

    /// Collapsing all qubits onto one frequency floods the device with
    /// near-null collisions.
    #[test]
    fn degenerate_frequencies_always_collide(f in 4.0f64..6.0) {
        let device = ChipletSpec::with_qubits(20).unwrap().build();
        let freqs = Frequencies::with_uniform_alpha(vec![f; 20], -0.33).unwrap();
        let report = find_collisions(&device, &freqs, &CollisionParams::paper());
        prop_assert!(!report.is_collision_free());
        // Every edge fires Type 1 at zero detuning.
        prop_assert_eq!(report.counts_by_type()[0], device.graph().num_edges());
    }
}
