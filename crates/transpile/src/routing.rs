//! SABRE-style SWAP routing.
//!
//! After Li, Ding & Xie, "Tackling the Qubit Mapping Problem for
//! NISQ-Era Quantum Devices" (ASPLOS 2019) — the chiplet paper's
//! qubit-mapping reference. The router keeps the *front layer* of
//! blocked two-qubit gates,
//! scores every candidate SWAP by the distance change over the front
//! layer plus a discounted *extended set* lookahead, applies a decay
//! penalty to recently swapped qubits to spread SWAPs out, and inserts
//! the best SWAP until the front layer unblocks.
//!
//! Deviation from the original: tie-breaks are deterministic (lowest
//! edge id) instead of random, so routing is reproducible without an
//! RNG, and a shortest-path fallback guarantees progress if the
//! heuristic stalls.

use std::collections::VecDeque;

use chipletqc_circuit::circuit::Circuit;
use chipletqc_circuit::gate::{Gate, GateQubits};
use chipletqc_circuit::qubit::Qubit;
use chipletqc_topology::device::Device;
use chipletqc_topology::qubit::QubitId;

use crate::layout::Layout;

/// SABRE heuristic parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingParams {
    /// Extended-set size (lookahead gates).
    pub extended_set_size: usize,
    /// Extended-set weight `W`.
    pub extended_set_weight: f64,
    /// Decay increment per SWAP on the involved qubits.
    pub decay_delta: f64,
    /// SWAPs between decay resets.
    pub decay_reset_interval: usize,
}

impl RoutingParams {
    /// The parameters from the SABRE paper.
    pub fn sabre() -> RoutingParams {
        RoutingParams {
            extended_set_size: 20,
            extended_set_weight: 0.5,
            decay_delta: 0.001,
            decay_reset_interval: 5,
        }
    }
}

impl Default for RoutingParams {
    fn default() -> Self {
        RoutingParams::sabre()
    }
}

/// The routing result: a physical-qubit circuit plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Routed {
    /// The circuit over physical qubit indices; every two-qubit gate
    /// respects device connectivity.
    pub circuit: Circuit,
    /// SWAPs inserted.
    pub swaps: usize,
    /// Where each logical qubit ended up.
    pub final_layout: Layout,
}

/// Routes `circuit` onto `device` starting from `layout`.
///
/// # Panics
///
/// Panics if the circuit is wider than the device or the device is
/// disconnected (no routing exists between components).
pub fn route(
    circuit: &Circuit,
    device: &Device,
    layout: &Layout,
    params: &RoutingParams,
) -> Routed {
    assert!(circuit.num_qubits() <= device.num_qubits(), "circuit wider than device");
    let dist = device.graph().distance_matrix();
    let gates = circuit.gates();
    let mut layout = layout.clone();
    let mut out = Circuit::named(device.num_qubits(), circuit.name().to_string());

    // Per-qubit gate queues: gate g is ready when it heads the queue of
    // every qubit it touches.
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); circuit.num_qubits()];
    for (g, gate) in gates.iter().enumerate() {
        for q in gate.qubits().iter() {
            queues[q.index()].push_back(g);
        }
    }
    let mut executed = vec![false; gates.len()];
    let mut remaining = gates.len();
    let mut swaps = 0usize;
    let mut decay = vec![1.0f64; device.num_qubits()];
    let mut swaps_since_reset = 0usize;
    let mut swaps_since_progress = 0usize;
    let mut scan_start = 0usize;
    let stall_limit = 4 * device.num_qubits() + 64;

    let is_ready = |queues: &[VecDeque<usize>], g: usize, gate: &Gate| {
        gate.qubits().iter().all(|q| queues[q.index()].front() == Some(&g))
    };

    while remaining > 0 {
        // Phase 1: drain everything executable.
        let mut progressed = true;
        while progressed {
            progressed = false;
            // Candidate gates are the heads of all queues.
            let heads: Vec<usize> = queues.iter().filter_map(|q| q.front().copied()).collect();
            for g in heads {
                if executed[g] || !is_ready(&queues, g, &gates[g]) {
                    continue;
                }
                let gate = gates[g];
                let runnable = match gate.qubits() {
                    GateQubits::One(_) => true,
                    GateQubits::Two(a, b) => {
                        let (pa, pb) = (layout.physical(a), layout.physical(b));
                        device.graph().edge_between(pa, pb).is_some()
                    }
                };
                if runnable {
                    emit(&mut out, &gate, &layout);
                    for q in gate.qubits().iter() {
                        queues[q.index()].pop_front();
                    }
                    executed[g] = true;
                    remaining -= 1;
                    progressed = true;
                    swaps_since_progress = 0;
                    decay.iter_mut().for_each(|d| *d = 1.0);
                }
            }
        }
        if remaining == 0 {
            break;
        }

        // Phase 2: the front layer is blocked; pick a SWAP.
        let front: Vec<(Qubit, Qubit)> = queues
            .iter()
            .filter_map(|q| q.front().copied())
            .filter(|g| is_ready(&queues, *g, &gates[*g]))
            .filter_map(|g| match gates[g].qubits() {
                GateQubits::Two(a, b) => Some((a, b)),
                GateQubits::One(_) => None,
            })
            .collect();
        let mut front_dedup = front;
        front_dedup.sort_unstable();
        front_dedup.dedup();
        assert!(
            !front_dedup.is_empty(),
            "router stalled with {remaining} gates and an empty front layer"
        );

        // Advance the dense-executed-prefix pointer so the extended-set
        // scan stays O(window) instead of O(circuit).
        while scan_start < gates.len() && executed[scan_start] {
            scan_start += 1;
        }

        if swaps_since_progress >= stall_limit {
            // Fallback: force the first blocked gate together along a
            // shortest path.
            let (a, b) = front_dedup[0];
            let (pa, pb) = (layout.physical(a), layout.physical(b));
            let path = device.graph().shortest_path(pa, pb).expect("device is connected");
            for w in path.windows(2).take(path.len().saturating_sub(2)) {
                out.swap(Qubit(w[0].0), Qubit(w[1].0));
                layout.swap_physical(w[0], w[1]);
                swaps += 1;
            }
            swaps_since_progress = 0;
            continue;
        }

        let extended =
            extended_set(gates, &executed, scan_start, &front_dedup, params.extended_set_size);

        // Candidate SWAPs: every device edge touching a front gate's
        // physical qubits.
        let mut candidates: Vec<(QubitId, QubitId)> = Vec::new();
        for &(a, b) in &front_dedup {
            for p in [layout.physical(a), layout.physical(b)] {
                for &(n, _) in device.graph().neighbors(p) {
                    let (x, y) = if p < n { (p, n) } else { (n, p) };
                    candidates.push((x, y));
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        let mut best: Option<((QubitId, QubitId), f64)> = None;
        for &(x, y) in &candidates {
            layout.swap_physical(x, y);
            let front_cost: f64 = front_dedup
                .iter()
                .map(|&(a, b)| {
                    dist[layout.physical(a).index()][layout.physical(b).index()] as f64
                })
                .sum::<f64>()
                / front_dedup.len() as f64;
            let ext_cost: f64 = if extended.is_empty() {
                0.0
            } else {
                extended
                    .iter()
                    .map(|&(a, b)| {
                        dist[layout.physical(a).index()][layout.physical(b).index()] as f64
                    })
                    .sum::<f64>()
                    / extended.len() as f64
            };
            layout.swap_physical(x, y); // undo
            let score = decay[x.index()].max(decay[y.index()])
                * (front_cost + params.extended_set_weight * ext_cost);
            if best.is_none_or(|(_, s)| score < s) {
                best = Some(((x, y), score));
            }
        }
        let ((x, y), _) = best.expect("blocked front implies candidate swaps");
        out.swap(Qubit(x.0), Qubit(y.0));
        layout.swap_physical(x, y);
        swaps += 1;
        swaps_since_progress += 1;
        decay[x.index()] += params.decay_delta;
        decay[y.index()] += params.decay_delta;
        swaps_since_reset += 1;
        if swaps_since_reset >= params.decay_reset_interval {
            decay.iter_mut().for_each(|d| *d = 1.0);
            swaps_since_reset = 0;
        }
    }

    Routed { circuit: out, swaps, final_layout: layout }
}

/// The next `limit` unexecuted two-qubit gates in program order,
/// excluding the front layer itself — SABRE's lookahead window.
fn extended_set(
    gates: &[Gate],
    executed: &[bool],
    scan_start: usize,
    front: &[(Qubit, Qubit)],
    limit: usize,
) -> Vec<(Qubit, Qubit)> {
    let mut extended = Vec::with_capacity(limit);
    let mut skipped_front: Vec<(Qubit, Qubit)> = front.to_vec();
    for (g, gate) in gates.iter().enumerate().skip(scan_start) {
        if extended.len() >= limit {
            break;
        }
        if executed[g] {
            continue;
        }
        if let GateQubits::Two(a, b) = gate.qubits() {
            if let Some(pos) = skipped_front.iter().position(|f| *f == (a, b)) {
                skipped_front.swap_remove(pos);
                continue;
            }
            extended.push((a, b));
        }
    }
    extended
}

/// Emits a gate with its qubits remapped through the layout.
fn emit(out: &mut Circuit, gate: &Gate, layout: &Layout) {
    let map = |q: Qubit| Qubit(layout.physical(q).0);
    let mapped = match *gate {
        Gate::Rz { q, theta } => Gate::Rz { q: map(q), theta },
        Gate::Sx { q } => Gate::Sx { q: map(q) },
        Gate::X { q } => Gate::X { q: map(q) },
        Gate::H { q } => Gate::H { q: map(q) },
        Gate::Rx { q, theta } => Gate::Rx { q: map(q), theta },
        Gate::Ry { q, theta } => Gate::Ry { q: map(q), theta },
        Gate::Cx { control, target } => Gate::Cx { control: map(control), target: map(target) },
        Gate::Swap { a, b } => Gate::Swap { a: map(a), b: map(b) },
        Gate::Rzz { a, b, theta } => Gate::Rzz { a: map(a), b: map(b), theta },
        Gate::Measure { q } => Gate::Measure { q: map(q) },
    };
    out.push(mapped);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutStrategy;
    use chipletqc_benchmarks::suite::Benchmark;
    use chipletqc_math::rng::Seed;
    use chipletqc_topology::family::MonolithicSpec;

    fn check_connectivity(routed: &Routed, device: &Device) {
        for g in routed.circuit.gates() {
            if let GateQubits::Two(a, b) = g.qubits() {
                assert!(
                    device.graph().edge_between(QubitId(a.0), QubitId(b.0)).is_some(),
                    "{} on non-adjacent {a},{b}",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn already_adjacent_circuit_needs_no_swaps() {
        let device = MonolithicSpec::with_qubits(20).unwrap().build();
        // CX along a device edge, using trivial layout.
        let e = &device.edges()[0];
        let mut c = Circuit::new(device.num_qubits());
        c.cx(Qubit(e.a.0), Qubit(e.b.0));
        let layout = LayoutStrategy::Trivial.place(device.num_qubits(), &device);
        let routed = route(&c, &device, &layout, &RoutingParams::sabre());
        assert_eq!(routed.swaps, 0);
        assert_eq!(routed.circuit.count_2q(), 1);
    }

    #[test]
    fn distant_cx_gets_routed() {
        let device = MonolithicSpec::with_qubits(40).unwrap().build();
        let far = device.num_qubits() as u32 - 1;
        let mut c = Circuit::new(device.num_qubits());
        c.cx(Qubit(0), Qubit(far));
        let layout = LayoutStrategy::Trivial.place(device.num_qubits(), &device);
        let routed = route(&c, &device, &layout, &RoutingParams::sabre());
        assert!(routed.swaps > 0);
        check_connectivity(&routed, &device);
        // Original CX still present exactly once.
        let cx = routed.circuit.gates().iter().filter(|g| matches!(g, Gate::Cx { .. })).count();
        assert_eq!(cx, 1);
    }

    #[test]
    fn all_benchmarks_route_on_a_100q_monolithic() {
        let device = MonolithicSpec::with_qubits(100).unwrap().build();
        let layout_full = LayoutStrategy::SnakeOrder.place(device.num_qubits(), &device);
        for b in Benchmark::ALL {
            let circuit = b.for_device_qubits(100, Seed(2));
            let routed = route(&circuit, &device, &layout_full, &RoutingParams::sabre());
            check_connectivity(&routed, &device);
            assert_eq!(
                routed.circuit.count_2q(),
                circuit.count_2q() + routed.swaps,
                "{b}: gate accounting"
            );
            assert_eq!(routed.circuit.count_measurements(), circuit.count_measurements());
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let device = MonolithicSpec::with_qubits(60).unwrap().build();
        let circuit = Benchmark::Qaoa.for_device_qubits(60, Seed(3));
        let layout = LayoutStrategy::SnakeOrder.place(device.num_qubits(), &device);
        let a = route(&circuit, &device, &layout, &RoutingParams::sabre());
        let b = route(&circuit, &device, &layout, &RoutingParams::sabre());
        assert_eq!(a, b);
    }

    #[test]
    fn snake_layout_beats_trivial_on_ghz() {
        let device = MonolithicSpec::with_qubits(80).unwrap().build();
        let circuit = Benchmark::Ghz.for_device_qubits(80, Seed(4));
        let snake = LayoutStrategy::SnakeOrder.place(device.num_qubits(), &device);
        let trivial = LayoutStrategy::Trivial.place(device.num_qubits(), &device);
        let swaps_snake = route(&circuit, &device, &snake, &RoutingParams::sabre()).swaps;
        let swaps_trivial = route(&circuit, &device, &trivial, &RoutingParams::sabre()).swaps;
        assert!(swaps_snake <= swaps_trivial, "snake {swaps_snake} vs trivial {swaps_trivial}");
    }

    #[test]
    fn final_layout_tracks_swaps() {
        let device = MonolithicSpec::with_qubits(40).unwrap().build();
        let mut c = Circuit::new(device.num_qubits());
        c.cx(Qubit(0), Qubit(39));
        let layout = LayoutStrategy::Trivial.place(device.num_qubits(), &device);
        let routed = route(&c, &device, &layout, &RoutingParams::sabre());
        // Replaying the routed circuit's swaps over the initial layout
        // must yield the final layout.
        let mut replay = layout.clone();
        for g in routed.circuit.gates() {
            if let Gate::Swap { a, b } = g {
                replay.swap_physical(QubitId(a.0), QubitId(b.0));
            }
        }
        assert_eq!(replay, routed.final_layout);
    }
}
