//! Lowering to the IBM-style physical basis {RZ, SX, X, CX}.
//!
//! Identities used (all verified against the statevector simulator in
//! the cross-crate test suite, up to global phase):
//!
//! * `H       = RZ(π/2) · SX · RZ(π/2)`                    (3 gates)
//! * `RX(θ)   = RZ(π/2) · SX · RZ(θ+π) · SX · RZ(π/2)`     (5 gates)
//! * `RY(θ)   = SX · RZ(θ+π) · SX · RZ(π)`                 (4 gates)
//! * `SWAP    = CX·CX·CX` (alternating direction)
//! * `RZZ(θ)  = CX · RZ(θ) · CX`
//!
//! These are the footprints behind the Table II tallies (BV's
//! `1q = 2n·3` from its two Hadamard layers, TFIM's `5n + (n−1)`).
//!
//! The optional *direction enforcement* pass rewrites every CX whose
//! control is not the device edge's CR control (`F2`) qubit using the
//! four-Hadamard identity; the paper treats direction reversal as free
//! at the pulse level, so enforcement defaults **off** and exists for
//! the ablation study.

use std::f64::consts::{FRAC_PI_2, PI};

use chipletqc_circuit::circuit::Circuit;
use chipletqc_circuit::gate::Gate;
use chipletqc_circuit::qubit::Qubit;
use chipletqc_topology::device::Device;
use chipletqc_topology::qubit::QubitId;

/// Lowers every gate to the physical basis. The input may reference
/// either logical or physical qubits; indices pass through unchanged.
pub fn to_basis(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::named(circuit.num_qubits(), circuit.name().to_string());
    for gate in circuit.gates() {
        lower(&mut out, gate);
    }
    out
}

fn lower(out: &mut Circuit, gate: &Gate) {
    match *gate {
        Gate::Rz { .. }
        | Gate::Sx { .. }
        | Gate::X { .. }
        | Gate::Cx { .. }
        | Gate::Measure { .. } => {
            out.push(*gate);
        }
        Gate::H { q } => {
            out.rz(q, FRAC_PI_2).sx(q).rz(q, FRAC_PI_2);
        }
        Gate::Rx { q, theta } => {
            out.rz(q, FRAC_PI_2).sx(q).rz(q, theta + PI).sx(q).rz(q, FRAC_PI_2);
        }
        Gate::Ry { q, theta } => {
            out.sx(q).rz(q, theta + PI).sx(q).rz(q, PI);
        }
        Gate::Swap { a, b } => {
            out.cx(a, b).cx(b, a).cx(a, b);
        }
        Gate::Rzz { a, b, theta } => {
            out.cx(a, b).rz(b, theta).cx(a, b);
        }
    }
}

/// Rewrites CX gates whose control is not the CR control of the
/// underlying device edge: `CX(t, c) = (H⊗H) · CX(c, t) · (H⊗H)`, with
/// the Hadamards pre-lowered to the basis.
///
/// Expects a circuit over *physical* qubit indices whose two-qubit
/// gates already respect connectivity (i.e. routing output after
/// [`to_basis`]).
///
/// # Panics
///
/// Panics if a two-qubit gate does not correspond to a device edge.
pub fn enforce_cr_direction(circuit: &Circuit, device: &Device) -> Circuit {
    let mut out = Circuit::named(circuit.num_qubits(), circuit.name().to_string());
    let h = |out: &mut Circuit, q: Qubit| {
        out.rz(q, FRAC_PI_2).sx(q).rz(q, FRAC_PI_2);
    };
    for gate in circuit.gates() {
        match *gate {
            Gate::Cx { control, target } => {
                let edge = device
                    .edge_between(QubitId(control.0), QubitId(target.0))
                    .unwrap_or_else(|| panic!("cx {control},{target} is not a device edge"));
                if edge.control == QubitId(control.0) {
                    out.push(*gate);
                } else {
                    h(&mut out, control);
                    h(&mut out, target);
                    out.cx(target, control);
                    h(&mut out, control);
                    h(&mut out, target);
                }
            }
            _ => out.push(*gate),
        }
    }
    out
}

/// Merges adjacent RZ rotations on the same qubit and drops RZ(≈0)
/// gates — an optional cleanup pass (extension; kept separate so the
/// Table II bookkeeping stays faithful by default).
pub fn merge_rz(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::named(circuit.num_qubits(), circuit.name().to_string());
    // Pending RZ angle per qubit, flushed when any other gate touches
    // the qubit.
    let mut pending: Vec<f64> = vec![0.0; circuit.num_qubits()];
    let flush = |out: &mut Circuit, pending: &mut [f64], q: Qubit| {
        let theta = pending[q.index()];
        if theta.abs() > 1e-12 {
            out.rz(q, theta);
        }
        pending[q.index()] = 0.0;
    };
    for gate in circuit.gates() {
        match *gate {
            Gate::Rz { q, theta } => pending[q.index()] += theta,
            _ => {
                for q in gate.qubits().iter() {
                    flush(&mut out, &mut pending, q);
                }
                out.push(*gate);
            }
        }
    }
    for q in 0..circuit.num_qubits() as u32 {
        flush(&mut out, &mut pending, Qubit(q));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipletqc_topology::family::ChipletSpec;

    #[test]
    fn h_costs_three_rx_five_ry_four() {
        let mut c = Circuit::new(1);
        c.h(Qubit(0));
        assert_eq!(to_basis(&c).count_1q(), 3);
        let mut c = Circuit::new(1);
        c.rx(Qubit(0), 0.7);
        assert_eq!(to_basis(&c).count_1q(), 5);
        let mut c = Circuit::new(1);
        c.ry(Qubit(0), 0.7);
        assert_eq!(to_basis(&c).count_1q(), 4);
    }

    #[test]
    fn swap_and_rzz_expand_to_cx() {
        let mut c = Circuit::new(2);
        c.swap(Qubit(0), Qubit(1)).rzz(Qubit(0), Qubit(1), 0.3);
        let basis = to_basis(&c);
        assert_eq!(basis.count_2q(), 5);
        assert!(basis.gates().iter().all(|g| g.is_basis()));
    }

    #[test]
    fn basis_gates_pass_through() {
        let mut c = Circuit::new(2);
        c.rz(Qubit(0), 0.1).sx(Qubit(0)).x(Qubit(1)).cx(Qubit(0), Qubit(1)).measure(Qubit(1));
        let basis = to_basis(&c);
        assert_eq!(basis.gates(), c.gates());
    }

    #[test]
    fn bv_footprint_matches_table2() {
        // Table II BV rows: 1q = 2n * 3 (two Hadamard layers).
        let n = 32;
        let c =
            chipletqc_benchmarks::bv::bv_circuit(n, &chipletqc_benchmarks::bv::all_ones(n - 1));
        let basis = to_basis(&c);
        assert_eq!(basis.count_1q(), 2 * n * 3 + 1); // + the |−⟩ virtual Z
    }

    #[test]
    fn tfim_footprint_matches_table2() {
        // Table II h row (40q system, n = 32): 191 / 62.
        let c = chipletqc_benchmarks::hamiltonian::tfim_circuit(
            32,
            &chipletqc_benchmarks::hamiltonian::TfimParams::paper(),
        );
        let basis = to_basis(&c);
        assert_eq!(basis.count_1q(), 191);
        assert_eq!(basis.count_2q(), 62);
    }

    #[test]
    fn direction_enforcement_fixes_reversed_cx() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let e = &device.edges()[0];
        let (c_phys, t_phys) = (e.control, e.target());
        // A CX driven from the target side: must be rewrapped.
        let mut c = Circuit::new(device.num_qubits());
        c.cx(Qubit(t_phys.0), Qubit(c_phys.0));
        let fixed = enforce_cr_direction(&c, &device);
        assert_eq!(fixed.count_2q(), 1);
        assert_eq!(fixed.count_1q(), 12); // 4 H x 3 basis gates
        match fixed.gates().iter().find(|g| g.is_two_qubit()).unwrap() {
            Gate::Cx { control, target } => {
                assert_eq!(control.0, c_phys.0);
                assert_eq!(target.0, t_phys.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A correctly-directed CX passes through untouched.
        let mut ok = Circuit::new(device.num_qubits());
        ok.cx(Qubit(c_phys.0), Qubit(t_phys.0));
        assert_eq!(enforce_cr_direction(&ok, &device).len(), 1);
    }

    #[test]
    #[should_panic(expected = "not a device edge")]
    fn direction_enforcement_rejects_unrouted() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let mut c = Circuit::new(device.num_qubits());
        // Qubits 0 and 9 are not adjacent on the 10q chiplet.
        c.cx(Qubit(0), Qubit(9));
        let _ = enforce_cr_direction(&c, &device);
    }

    #[test]
    fn merge_rz_combines_and_drops() {
        let mut c = Circuit::new(2);
        c.rz(Qubit(0), 0.5)
            .rz(Qubit(0), 0.25)
            .sx(Qubit(0))
            .rz(Qubit(1), 0.3)
            .rz(Qubit(1), -0.3)
            .cx(Qubit(0), Qubit(1));
        let merged = merge_rz(&c);
        // q0: one rz(0.75) then sx; q1: rz cancels to zero and vanishes.
        let rz: Vec<f64> = merged
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Rz { theta, .. } => Some(*theta),
                _ => None,
            })
            .collect();
        assert_eq!(rz.len(), 1);
        assert!((rz[0] - 0.75).abs() < 1e-12);
        assert_eq!(merged.count_2q(), 1);
    }

    #[test]
    fn merge_rz_flushes_trailing() {
        let mut c = Circuit::new(1);
        c.rz(Qubit(0), 0.4);
        let merged = merge_rz(&c);
        assert_eq!(merged.count_1q(), 1);
    }
}
