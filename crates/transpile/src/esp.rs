//! The fidelity-product figure of merit.
//!
//! Section VII-B: "our fidelity product that estimates benchmark
//! success is calculated by multiplying all two-qubit operator
//! fidelities" — an ESP-style metric restricted to two-qubit gates
//! (single-qubit error is not assigned by the paper's models). The
//! product underflows `f64` at evaluation scale, so it is carried as a
//! [`LogProduct`].

use chipletqc_circuit::circuit::Circuit;
use chipletqc_circuit::gate::GateQubits;
use chipletqc_math::logspace::LogProduct;
use chipletqc_noise::assign::EdgeNoise;
use chipletqc_topology::device::Device;
use chipletqc_topology::qubit::QubitId;

/// Computes the log-domain fidelity product of every two-qubit gate in
/// a *routed, physical* circuit.
///
/// # Panics
///
/// Panics if any two-qubit gate does not lie on a device edge (i.e. the
/// circuit was not routed for this device) or the noise table does not
/// cover the device.
pub fn esp_log(circuit: &Circuit, device: &Device, noise: &EdgeNoise) -> LogProduct {
    assert_eq!(
        noise.len(),
        device.edges().len(),
        "noise table does not match device {}",
        device.name()
    );
    let mut esp = LogProduct::one();
    for gate in circuit.gates() {
        if let GateQubits::Two(a, b) = gate.qubits() {
            let edge = device
                .edge_between(QubitId(a.0), QubitId(b.0))
                .unwrap_or_else(|| panic!("{} {a},{b} not on a device edge", gate.name()));
            // SWAP costs three CX on hardware; RZZ costs two.
            let per_edge = noise.fidelity(edge.id);
            let repetitions = match gate.name() {
                "swap" => 3,
                "rzz" => 2,
                _ => 1,
            };
            for _ in 0..repetitions {
                esp.mul_prob(per_edge.clamp(0.0, 1.0));
            }
        }
    }
    esp
}

/// Per-edge two-qubit-gate usage counts of a routed physical circuit
/// (SWAP counted 3×, RZZ 2×), indexed by edge id.
///
/// Population studies score one compiled circuit against hundreds of
/// fabricated devices; with usage counts the per-device ESP becomes a
/// single pass over edges instead of over gates:
/// `ln ESP = Σ_e usage[e] · ln(fidelity_e)`.
///
/// # Panics
///
/// Panics if a two-qubit gate is not on a device edge.
pub fn edge_usage(circuit: &Circuit, device: &Device) -> Vec<u32> {
    let mut usage = vec![0u32; device.edges().len()];
    for gate in circuit.gates() {
        if let GateQubits::Two(a, b) = gate.qubits() {
            let edge = device
                .edge_between(QubitId(a.0), QubitId(b.0))
                .unwrap_or_else(|| panic!("{} {a},{b} not on a device edge", gate.name()));
            let repetitions = match gate.name() {
                "swap" => 3,
                "rzz" => 2,
                _ => 1,
            };
            usage[edge.id.index()] += repetitions;
        }
    }
    usage
}

/// The log-domain ESP from precomputed [`edge_usage`] counts.
///
/// # Panics
///
/// Panics if the usage table and noise table disagree in length.
pub fn esp_from_usage(usage: &[u32], noise: &EdgeNoise) -> LogProduct {
    assert_eq!(usage.len(), noise.len(), "usage/noise table length mismatch");
    let mut esp = LogProduct::one();
    for (e, &count) in usage.iter().enumerate() {
        esp.mul_prob_pow(
            noise.fidelity(chipletqc_topology::graph::EdgeId(e as u32)).clamp(0.0, 1.0),
            count as usize,
        );
    }
    esp
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipletqc_circuit::qubit::Qubit;
    use chipletqc_noise::assign::EdgeNoise;
    use chipletqc_topology::family::ChipletSpec;

    fn uniform_noise(device: &Device, e: f64) -> EdgeNoise {
        EdgeNoise::from_infidelities(vec![e; device.edges().len()])
    }

    #[test]
    fn counts_only_two_qubit_gates() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let edge = &device.edges()[0];
        let mut c = Circuit::new(device.num_qubits());
        c.h(Qubit(edge.a.0));
        c.cx(Qubit(edge.a.0), Qubit(edge.b.0));
        c.measure(Qubit(edge.a.0));
        let esp = esp_log(&c, &device, &uniform_noise(&device, 0.02));
        assert_eq!(esp.factors(), 1);
        assert!((esp.value() - 0.98).abs() < 1e-12);
    }

    #[test]
    fn swap_weighs_three_rzz_two() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let edge = &device.edges()[0];
        let (a, b) = (Qubit(edge.a.0), Qubit(edge.b.0));
        let mut c = Circuit::new(device.num_qubits());
        c.swap(a, b).rzz(a, b, 0.4);
        let esp = esp_log(&c, &device, &uniform_noise(&device, 0.01));
        assert_eq!(esp.factors(), 5);
        assert!((esp.value() - 0.99f64.powi(5)).abs() < 1e-12);
    }

    #[test]
    fn log_domain_survives_large_circuits() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let edge = &device.edges()[0];
        let mut c = Circuit::new(device.num_qubits());
        for _ in 0..100_000 {
            c.cx(Qubit(edge.a.0), Qubit(edge.b.0));
        }
        let esp = esp_log(&c, &device, &uniform_noise(&device, 0.02));
        assert_eq!(esp.value(), 0.0); // underflows as a plain f64 ...
        assert!(esp.log10().is_finite()); // ... but not in log space
    }

    #[test]
    fn usage_based_esp_matches_direct() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let e0 = &device.edges()[0];
        let e1 = &device.edges()[1];
        let mut c = Circuit::new(device.num_qubits());
        c.cx(Qubit(e0.a.0), Qubit(e0.b.0)).swap(Qubit(e1.a.0), Qubit(e1.b.0)).rzz(
            Qubit(e0.a.0),
            Qubit(e0.b.0),
            0.2,
        );
        let mut infid = vec![0.01; device.edges().len()];
        infid[1] = 0.05;
        let noise = EdgeNoise::from_infidelities(infid);
        let usage = edge_usage(&c, &device);
        assert_eq!(usage[0], 3); // cx + rzz x2
        assert_eq!(usage[1], 3); // swap x3
        let direct = esp_log(&c, &device, &noise);
        let fast = esp_from_usage(&usage, &noise);
        assert!((direct.ln() - fast.ln()).abs() < 1e-12);
        assert_eq!(direct.factors(), fast.factors());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn usage_esp_rejects_mismatch() {
        let noise = EdgeNoise::from_infidelities(vec![0.01]);
        let _ = esp_from_usage(&[1, 2], &noise);
    }

    #[test]
    #[should_panic(expected = "not on a device edge")]
    fn rejects_unrouted_circuits() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let mut c = Circuit::new(device.num_qubits());
        c.cx(Qubit(0), Qubit(9));
        let _ = esp_log(&c, &device, &uniform_noise(&device, 0.01));
    }

    #[test]
    #[should_panic(expected = "does not match device")]
    fn rejects_mismatched_noise() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let c = Circuit::new(device.num_qubits());
        let _ = esp_log(&c, &device, &EdgeNoise::from_infidelities(vec![0.01]));
    }
}
