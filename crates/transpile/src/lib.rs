//! Layout, routing, basis decomposition, and ESP scoring.
//!
//! The compiler substrate that maps the paper's logical benchmark
//! circuits onto heavy-hex devices:
//!
//! * [`layout`] — initial logical→physical placement (trivial ascending
//!   or the default snake order, a low-degree-first depth-first walk
//!   that favors the chain-structured benchmarks);
//! * [`routing`] — SABRE-style SWAP insertion (front layer + extended
//!   set + decay, after Li, Ding & Xie, ASPLOS'19 — the paper's
//!   qubit-mapping reference);
//! * [`decompose`] — lowering to the IBM-style physical basis
//!   {RZ, SX, X, CX}, with optional CR-direction enforcement
//!   (reversing a CX costs four HH wrappers; the paper treats reversal
//!   as free, so enforcement defaults off);
//! * [`esp`] — the fidelity-product figure of merit over all two-qubit
//!   gates, computed in log space;
//! * [`pipeline`] — the end-to-end [`pipeline::Transpiler`].
//!
//! # Example
//!
//! ```
//! use chipletqc_benchmarks::suite::Benchmark;
//! use chipletqc_math::rng::Seed;
//! use chipletqc_topology::family::MonolithicSpec;
//! use chipletqc_transpile::pipeline::Transpiler;
//!
//! let device = MonolithicSpec::with_qubits(40).unwrap().build();
//! let circuit = Benchmark::Ghz.for_device_qubits(40, Seed(1));
//! let out = Transpiler::paper().transpile(&circuit, &device);
//! // Every two-qubit gate in the output respects device connectivity.
//! assert!(out.respects_connectivity(&device));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompose;
pub mod esp;
pub mod layout;
pub mod pipeline;
pub mod routing;

pub use esp::esp_log;
pub use layout::{Layout, LayoutStrategy};
pub use pipeline::{TranspiledCircuit, Transpiler};
