//! The end-to-end transpiler.
//!
//! Layout → SABRE routing → basis decomposition (→ optional CR
//! direction enforcement). The output carries everything the
//! evaluation needs: Table II gate tallies and ESP scoring against a
//! device noise assignment.

use chipletqc_circuit::circuit::{Circuit, GateCounts};
use chipletqc_math::logspace::LogProduct;
use chipletqc_noise::assign::EdgeNoise;
use chipletqc_topology::device::Device;
use chipletqc_topology::qubit::QubitId;

use crate::decompose::{enforce_cr_direction, to_basis};
use crate::esp::esp_log;
use crate::layout::{Layout, LayoutStrategy};
use crate::routing::{route, RoutingParams};

/// Transpiler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transpiler {
    /// Initial placement strategy.
    pub layout: LayoutStrategy,
    /// SABRE parameters.
    pub routing: RoutingParams,
    /// Whether to rewrite CX gates against the device's CR control
    /// orientation (ablation option; the paper counts direction
    /// reversal as free).
    pub enforce_direction: bool,
}

impl Transpiler {
    /// The configuration used for the paper reproductions: snake layout,
    /// SABRE routing, no direction enforcement.
    pub fn paper() -> Transpiler {
        Transpiler {
            layout: LayoutStrategy::SnakeOrder,
            routing: RoutingParams::sabre(),
            enforce_direction: false,
        }
    }

    /// Maps, routes, and lowers `circuit` onto `device`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the device.
    pub fn transpile(&self, circuit: &Circuit, device: &Device) -> TranspiledCircuit {
        let layout = self.layout.place(circuit.num_qubits(), device);
        self.transpile_with_layout(circuit, device, layout)
    }

    /// Like [`Transpiler::transpile`] but with a caller-provided
    /// initial layout — e.g. the noise-aware placement of
    /// [`crate::layout::noise_aware_layout`] (extension).
    ///
    /// # Panics
    ///
    /// Panics if the layout covers fewer qubits than the circuit.
    pub fn transpile_with_layout(
        &self,
        circuit: &Circuit,
        device: &Device,
        layout: Layout,
    ) -> TranspiledCircuit {
        assert!(
            layout.num_logical() >= circuit.num_qubits(),
            "layout places {} qubits but the circuit needs {}",
            layout.num_logical(),
            circuit.num_qubits()
        );
        let routed = route(circuit, device, &layout, &self.routing);
        let mut physical = to_basis(&routed.circuit);
        if self.enforce_direction {
            physical = enforce_cr_direction(&physical, device);
        }
        TranspiledCircuit {
            physical,
            swaps: routed.swaps,
            initial_layout: layout,
            final_layout: routed.final_layout,
            logical_2q: circuit.count_2q(),
        }
    }
}

impl Default for Transpiler {
    fn default() -> Self {
        Transpiler::paper()
    }
}

/// A transpiled circuit with its mapping provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TranspiledCircuit {
    /// The physical-basis circuit over device qubit indices.
    pub physical: Circuit,
    /// SWAPs inserted by routing.
    pub swaps: usize,
    /// Where each logical qubit started.
    pub initial_layout: Layout,
    /// Where each logical qubit ended.
    pub final_layout: Layout,
    /// Two-qubit gate count of the *logical* input (before routing and
    /// expansion) — the routing-overhead baseline.
    pub logical_2q: usize,
}

impl TranspiledCircuit {
    /// Table II tallies of the physical circuit.
    pub fn counts(&self) -> GateCounts {
        self.physical.counts()
    }

    /// Routing overhead: physical 2q gates per logical 2q gate.
    pub fn routing_overhead(&self) -> f64 {
        if self.logical_2q == 0 {
            return 1.0;
        }
        self.physical.count_2q() as f64 / self.logical_2q as f64
    }

    /// Whether every two-qubit gate lies on a device edge.
    pub fn respects_connectivity(&self, device: &Device) -> bool {
        self.physical.gates().iter().all(|g| match g.qubits() {
            chipletqc_circuit::gate::GateQubits::Two(a, b) => {
                device.edge_between(QubitId(a.0), QubitId(b.0)).is_some()
            }
            chipletqc_circuit::gate::GateQubits::One(_) => true,
        })
    }

    /// The ESP (log-domain fidelity product over all two-qubit gates)
    /// against a noise assignment for the same device.
    pub fn esp(&self, device: &Device, noise: &EdgeNoise) -> LogProduct {
        esp_log(&self.physical, device, noise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipletqc_benchmarks::suite::Benchmark;
    use chipletqc_math::rng::Seed;
    use chipletqc_noise::assign::EdgeNoise;
    use chipletqc_topology::family::{ChipletSpec, MonolithicSpec};
    use chipletqc_topology::mcm::McmSpec;

    #[test]
    fn transpiles_all_benchmarks_onto_mcm_and_mono() {
        let mcm = McmSpec::new(ChipletSpec::with_qubits(10).unwrap(), 2, 2).build();
        let mono = MonolithicSpec::with_qubits(40).unwrap().build();
        let t = Transpiler::paper();
        for b in Benchmark::ALL {
            let circuit = b.for_device_qubits(40, Seed(1));
            for device in [&mcm, &mono] {
                let out = t.transpile(&circuit, device);
                assert!(out.respects_connectivity(device), "{b} on {}", device.name());
                assert!(
                    out.physical.gates().iter().all(|g| g.is_basis()),
                    "{b}: non-basis gate"
                );
                assert!(out.routing_overhead() >= 1.0);
            }
        }
    }

    #[test]
    fn counts_look_like_table2_row_one() {
        // Table II, 10q chiplet 2x2 (40 qubits, n = 32): bv: 192+1q-ish /
        // hundreds of 2q. We check the structural identities rather than
        // the authors' exact compiler output: 1q = 2n*3 + 1, 2q =
        // (n-1) + 3*swaps.
        let device = McmSpec::new(ChipletSpec::with_qubits(10).unwrap(), 2, 2).build();
        let circuit = Benchmark::Bv.for_device_qubits(40, Seed(1));
        let out = Transpiler::paper().transpile(&circuit, &device);
        let counts = out.counts();
        assert_eq!(counts.one_qubit, 2 * 32 * 3 + 1);
        assert_eq!(counts.two_qubit, 31 + 3 * out.swaps);
        assert!(counts.two_qubit_critical <= counts.two_qubit);
        assert!(counts.two_qubit_critical >= 31);
    }

    #[test]
    fn direction_enforcement_adds_1q_only() {
        let device = ChipletSpec::with_qubits(20).unwrap().build();
        let circuit = Benchmark::Ghz.for_device_qubits(20, Seed(1));
        let free = Transpiler::paper().transpile(&circuit, &device);
        let strict = Transpiler { enforce_direction: true, ..Transpiler::paper() }
            .transpile(&circuit, &device);
        assert_eq!(free.physical.count_2q(), strict.physical.count_2q());
        assert!(strict.physical.count_1q() >= free.physical.count_1q());
        assert!(strict.respects_connectivity(&device));
        // Every CX now drives from the device's CR control.
        for g in strict.physical.gates() {
            if let chipletqc_circuit::gate::Gate::Cx { control, target } = g {
                let e = device.edge_between(QubitId(control.0), QubitId(target.0)).unwrap();
                assert_eq!(e.control, QubitId(control.0));
            }
        }
    }

    #[test]
    fn esp_decreases_with_more_gates() {
        let device = MonolithicSpec::with_qubits(40).unwrap().build();
        let noise = EdgeNoise::from_infidelities(vec![0.01; device.edges().len()]);
        let t = Transpiler::paper();
        let small = t.transpile(&Benchmark::Ghz.for_device_qubits(20, Seed(1)), &device);
        let large = t.transpile(&Benchmark::Ghz.for_device_qubits(40, Seed(1)), &device);
        assert!(large.esp(&device, &noise).ln() < small.esp(&device, &noise).ln());
    }

    #[test]
    fn transpile_is_deterministic() {
        let device = MonolithicSpec::with_qubits(60).unwrap().build();
        let circuit = Benchmark::Adder.for_device_qubits(60, Seed(5));
        let a = Transpiler::paper().transpile(&circuit, &device);
        let b = Transpiler::paper().transpile(&circuit, &device);
        assert_eq!(a, b);
    }
}
