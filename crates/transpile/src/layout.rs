//! Initial logical→physical placement.

use chipletqc_circuit::qubit::Qubit;
use chipletqc_topology::device::Device;
use chipletqc_topology::qubit::QubitId;

/// A bijective-on-its-domain mapping from logical circuit qubits to
/// physical device qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    to_physical: Vec<QubitId>,
    to_logical: Vec<Option<Qubit>>,
}

impl Layout {
    /// Builds a layout from an explicit logical→physical table over a
    /// device with `physical_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if the table maps two logical qubits to one physical
    /// qubit or indexes outside the device.
    pub fn from_mapping(to_physical: Vec<QubitId>, physical_qubits: usize) -> Layout {
        let mut to_logical = vec![None; physical_qubits];
        for (l, p) in to_physical.iter().enumerate() {
            assert!(p.index() < physical_qubits, "physical {p} out of range");
            assert!(
                to_logical[p.index()].is_none(),
                "physical {p} assigned to two logical qubits"
            );
            to_logical[p.index()] = Some(Qubit(l as u32));
        }
        Layout { to_physical, to_logical }
    }

    /// The physical home of logical `q`.
    pub fn physical(&self, q: Qubit) -> QubitId {
        self.to_physical[q.index()]
    }

    /// The logical occupant of physical `p`, if any.
    pub fn logical(&self, p: QubitId) -> Option<Qubit> {
        self.to_logical[p.index()]
    }

    /// Number of logical qubits placed.
    pub fn num_logical(&self) -> usize {
        self.to_physical.len()
    }

    /// Exchanges the occupants of two physical qubits (the effect of a
    /// routed SWAP). Either or both may be unoccupied ancillas.
    pub fn swap_physical(&mut self, a: QubitId, b: QubitId) {
        let (la, lb) = (self.to_logical[a.index()], self.to_logical[b.index()]);
        if let Some(l) = la {
            self.to_physical[l.index()] = b;
        }
        if let Some(l) = lb {
            self.to_physical[l.index()] = a;
        }
        self.to_logical.swap(a.index(), b.index());
    }

    /// The logical→physical table.
    pub fn as_table(&self) -> &[QubitId] {
        &self.to_physical
    }
}

/// Initial-placement strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LayoutStrategy {
    /// Logical `i` on physical `i`.
    Trivial,
    /// Logical qubits along a greedy depth-first walk that prefers
    /// low-degree neighbors: the walk extends path-like runs through
    /// the heavy-hex lattice, so program-adjacent logical qubits land
    /// on device-adjacent physical qubits — a strong fit for the
    /// chain-heavy benchmarks (GHZ, QAOA, TFIM, bit code). The
    /// default.
    #[default]
    SnakeOrder,
}

impl LayoutStrategy {
    /// Places `logical_qubits` qubits on `device`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit needs more qubits than the device has.
    pub fn place(self, logical_qubits: usize, device: &Device) -> Layout {
        assert!(
            logical_qubits <= device.num_qubits(),
            "{logical_qubits} logical qubits exceed device {} ({} qubits)",
            device.name(),
            device.num_qubits()
        );
        let order: Vec<QubitId> = match self {
            LayoutStrategy::Trivial => device.qubits().collect(),
            LayoutStrategy::SnakeOrder => snake_order(device),
        };
        Layout::from_mapping(order[..logical_qubits].to_vec(), device.num_qubits())
    }
}

/// Noise-aware placement (extension; DESIGN.md §9): like the snake
/// walk, but weighted by measured per-edge CX infidelity so the placed
/// region grows along the device's *best* couplings. The paper's
/// future-work section motivates exactly this kind of error-aware
/// mapping for modular systems ("intelligent compilation routines that
/// consider links").
///
/// # Panics
///
/// Panics if the noise table does not cover the device or the circuit
/// is wider than the device.
pub fn noise_aware_layout(
    device: &Device,
    noise: &chipletqc_noise::assign::EdgeNoise,
    logical_qubits: usize,
) -> Layout {
    assert_eq!(
        noise.len(),
        device.edges().len(),
        "noise table does not cover device {}",
        device.name()
    );
    assert!(
        logical_qubits <= device.num_qubits(),
        "{logical_qubits} logical qubits exceed device {}",
        device.name()
    );
    let graph = device.graph();
    let n = graph.num_qubits();

    // Phase 1 — region selection: grow a connected region of the
    // required size along the device's best couplings (Prim-style,
    // seeded at the single best edge).
    let mut in_region = vec![false; n];
    let mut region: Vec<QubitId> = Vec::with_capacity(logical_qubits);
    let best_edge = device
        .edges()
        .iter()
        .min_by(|a, b| noise.infidelity(a.id).total_cmp(&noise.infidelity(b.id)))
        .expect("devices have at least one edge");
    for q in [best_edge.a, best_edge.b] {
        if region.len() < logical_qubits {
            in_region[q.index()] = true;
            region.push(q);
        }
    }
    while region.len() < logical_qubits {
        let extend = region
            .iter()
            .flat_map(|q| graph.neighbors(*q))
            .filter(|(nb, _)| !in_region[nb.index()])
            .min_by(|(_, e1), (_, e2)| noise.infidelity(*e1).total_cmp(&noise.infidelity(*e2)))
            .map(|(nb, _)| *nb)
            .or_else(|| (0..n).find(|i| !in_region[*i]).map(|i| QubitId(i as u32)));
        let next = extend.expect("some qubit remains");
        in_region[next.index()] = true;
        region.push(next);
    }

    // Phase 2 — intra-region ordering: a snake walk over the induced
    // subgraph so program-adjacent logical qubits stay device-adjacent
    // (region selection alone would scatter them and feed the router
    // extra SWAPs). Prefer the best-fidelity next hop.
    let mut placed = vec![false; n];
    let mut order: Vec<QubitId> = Vec::with_capacity(logical_qubits);
    // Start from a region boundary qubit (fewest in-region neighbors).
    let start = *region
        .iter()
        .min_by_key(|q| {
            graph.neighbors(**q).iter().filter(|(nb, _)| in_region[nb.index()]).count()
        })
        .expect("region is nonempty");
    placed[start.index()] = true;
    order.push(start);
    while order.len() < logical_qubits {
        let last = *order.last().expect("nonempty");
        let next = graph
            .neighbors(last)
            .iter()
            .filter(|(nb, _)| in_region[nb.index()] && !placed[nb.index()])
            .min_by(|(_, e1), (_, e2)| noise.infidelity(*e1).total_cmp(&noise.infidelity(*e2)))
            .map(|(nb, _)| *nb)
            .or_else(|| {
                // Dead end: jump to the unplaced region qubit closest
                // to the already-placed walk.
                region.iter().copied().find(|q| !placed[q.index()])
            })
            .expect("region covers the request");
        placed[next.index()] = true;
        order.push(next);
    }
    Layout::from_mapping(order, device.num_qubits())
}

/// Greedy depth-first order preferring low-degree-first expansion,
/// seeded at a minimum-degree qubit (a lattice corner), covering all
/// components.
fn snake_order(device: &Device) -> Vec<QubitId> {
    let graph = device.graph();
    let n = graph.num_qubits();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Seed at a corner: the lowest-degree qubit (ties to lowest id).
    let mut seeds: Vec<QubitId> = device.qubits().collect();
    seeds.sort_by_key(|q| (graph.degree(*q), q.0));
    for seed in seeds {
        if visited[seed.index()] {
            continue;
        }
        let mut stack = vec![seed];
        visited[seed.index()] = true;
        while let Some(q) = stack.pop() {
            order.push(q);
            // Push higher-degree neighbors first so the lowest-degree
            // one is popped next: the walk hugs the lattice boundary
            // and produces long adjacent runs.
            let mut neighbors: Vec<QubitId> = graph
                .neighbors(q)
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| !visited[n.index()])
                .collect();
            neighbors.sort_by_key(|n| (std::cmp::Reverse(graph.degree(*n)), n.0));
            for n in neighbors {
                visited[n.index()] = true;
                stack.push(n);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipletqc_topology::family::ChipletSpec;

    #[test]
    fn trivial_is_identity() {
        let device = ChipletSpec::with_qubits(20).unwrap().build();
        let layout = LayoutStrategy::Trivial.place(10, &device);
        for l in 0..10u32 {
            assert_eq!(layout.physical(Qubit(l)), QubitId(l));
        }
        assert_eq!(layout.logical(QubitId(3)), Some(Qubit(3)));
        assert_eq!(layout.logical(QubitId(15)), None);
    }

    #[test]
    fn snake_covers_all_qubits_injectively() {
        let device = ChipletSpec::with_qubits(60).unwrap().build();
        let layout = LayoutStrategy::SnakeOrder.place(60, &device);
        let mut seen = [false; 60];
        for l in 0..60u32 {
            let p = layout.physical(Qubit(l));
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn snake_keeps_program_neighbors_close() {
        let device = ChipletSpec::with_qubits(40).unwrap().build();
        let layout = LayoutStrategy::SnakeOrder.place(30, &device);
        // Average physical distance between consecutive logical qubits
        // should beat the trivial layout's (which strides across rows).
        let avg_dist = |layout: &Layout| {
            let d: u32 = (0..29u32)
                .map(|i| {
                    device
                        .graph()
                        .distance(layout.physical(Qubit(i)), layout.physical(Qubit(i + 1)))
                        .unwrap()
                })
                .sum();
            d as f64 / 29.0
        };
        let trivial = LayoutStrategy::Trivial.place(30, &device);
        assert!(avg_dist(&layout) <= avg_dist(&trivial) + 0.5);
    }

    #[test]
    fn swap_physical_updates_both_directions() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        let mut layout = LayoutStrategy::Trivial.place(2, &device);
        layout.swap_physical(QubitId(0), QubitId(5));
        assert_eq!(layout.physical(Qubit(0)), QubitId(5));
        assert_eq!(layout.logical(QubitId(5)), Some(Qubit(0)));
        assert_eq!(layout.logical(QubitId(0)), None);
        // Swap back via the ancilla.
        layout.swap_physical(QubitId(5), QubitId(0));
        assert_eq!(layout.physical(Qubit(0)), QubitId(0));
    }

    #[test]
    fn noise_aware_layout_prefers_good_edges() {
        use chipletqc_noise::assign::EdgeNoise;
        let device = ChipletSpec::with_qubits(20).unwrap().build();
        // Make one edge spectacular and everything else mediocre.
        let mut infid = vec![0.05; device.edges().len()];
        infid[7] = 0.001;
        let noise = EdgeNoise::from_infidelities(infid);
        // A small circuit: the selected region must be seeded at (and
        // therefore contain) the golden edge.
        let layout = noise_aware_layout(&device, &noise, 6);
        let e = &device.edges()[7];
        let placed: Vec<QubitId> = (0..6u32).map(|l| layout.physical(Qubit(l))).collect();
        assert!(placed.contains(&e.a) && placed.contains(&e.b));
        // Injective placement.
        let mut seen = [false; 20];
        for p in placed {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
        // Full-width placement still covers every qubit exactly once.
        let full = noise_aware_layout(&device, &noise, 20);
        let mut seen = [false; 20];
        for l in 0..20u32 {
            let p = full.physical(Qubit(l));
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
    }

    #[test]
    fn noise_aware_layout_avoids_bad_region_for_small_circuits() {
        use chipletqc_noise::assign::EdgeNoise;
        let device = ChipletSpec::with_qubits(40).unwrap().build();
        // Poison the edges incident to the first dense row.
        let infid: Vec<f64> = device
            .edges()
            .iter()
            .map(|e| if e.a.0 < 8 || e.b.0 < 8 { 0.2 } else { 0.01 })
            .collect();
        let noise = EdgeNoise::from_infidelities(infid);
        let layout = noise_aware_layout(&device, &noise, 16);
        // A 16-qubit circuit should be placed entirely outside the
        // poisoned row.
        for l in 0..16u32 {
            assert!(layout.physical(Qubit(l)).0 >= 8, "logical {l} landed in the bad region");
        }
    }

    #[test]
    #[should_panic(expected = "does not cover device")]
    fn noise_aware_layout_rejects_mismatched_noise() {
        use chipletqc_noise::assign::EdgeNoise;
        let device = ChipletSpec::with_qubits(20).unwrap().build();
        let noise = EdgeNoise::from_infidelities(vec![0.01]);
        let _ = noise_aware_layout(&device, &noise, 4);
    }

    #[test]
    #[should_panic(expected = "exceed device")]
    fn rejects_oversized_circuits() {
        let device = ChipletSpec::with_qubits(10).unwrap().build();
        LayoutStrategy::Trivial.place(11, &device);
    }

    #[test]
    #[should_panic(expected = "assigned to two")]
    fn rejects_duplicate_mapping() {
        Layout::from_mapping(vec![QubitId(0), QubitId(0)], 4);
    }
}
