//! Unitary-equivalence validation of the transpiler.
//!
//! Routing and decomposition must be *semantics-preserving up to the
//! final qubit permutation*: simulating the transpiled circuit and
//! undoing the routing permutation must reproduce the original state
//! (up to global phase). This is the strongest correctness property a
//! compiler pass can have, checked here on every benchmark at
//! simulable width.

use chipletqc_benchmarks::suite::Benchmark;
use chipletqc_circuit::circuit::Circuit;
use chipletqc_circuit::gate::Gate;
use chipletqc_circuit::qubit::Qubit;
use chipletqc_math::rng::Seed;
use chipletqc_sim::state::State;
use chipletqc_topology::device::Device;
use chipletqc_topology::family::ChipletSpec;
use chipletqc_topology::mcm::McmSpec;
use chipletqc_transpile::decompose::{merge_rz, to_basis};
use chipletqc_transpile::pipeline::{TranspiledCircuit, Transpiler};

/// Simulates a transpiled circuit and permutes the result back into
/// logical order, comparing with the logical-circuit simulation.
fn assert_equivalent(circuit: &Circuit, device: &Device, out: &TranspiledCircuit) {
    assert!(device.num_qubits() <= 20, "device too wide to simulate");
    let logical_state = State::run(circuit);

    // Simulate the physical circuit on the full device width.
    let physical_state = State::run(&out.physical);

    // Build the permutation: logical qubit l sits on physical
    // out.final_layout.physical(l).
    let perm: Vec<usize> = (0..circuit.num_qubits())
        .map(|l| out.final_layout.physical(Qubit(l as u32)).index())
        .collect();

    // Compare amplitudes: basis state `b` (logical) corresponds to the
    // physical basis state with bit l at position perm[l] (all ancilla
    // qubits stay |0>).
    let mut diffs: Vec<(usize, usize)> = Vec::new();
    for b in 0..(1usize << circuit.num_qubits()) {
        let mut phys = 0usize;
        for (l, p) in perm.iter().enumerate() {
            if b >> l & 1 == 1 {
                phys |= 1 << p;
            }
        }
        diffs.push((b, phys));
    }
    // Anchor the global phase on the largest logical amplitude.
    let (anchor_logical, anchor_physical) = *diffs
        .iter()
        .max_by(|x, y| {
            logical_state
                .amplitude(x.0)
                .norm_sqr()
                .total_cmp(&logical_state.amplitude(y.0).norm_sqr())
        })
        .unwrap();
    let la = logical_state.amplitude(anchor_logical);
    let pa = physical_state.amplitude(anchor_physical);
    assert!(pa.abs() > 1e-9, "anchor amplitude vanished in physical state");
    let phase = la * pa.conj().scale(1.0 / pa.norm_sqr());
    for (b, phys) in diffs {
        let expect = logical_state.amplitude(b);
        let got = phase * physical_state.amplitude(phys);
        assert!(
            (expect - got).abs() < 1e-7,
            "amplitude mismatch at |{b:b}>: {expect} vs {got}"
        );
    }
}

#[test]
fn all_benchmarks_transpile_equivalently_on_a_10q_chiplet() {
    let device = ChipletSpec::with_qubits(10).unwrap().build();
    let t = Transpiler::paper();
    for b in Benchmark::ALL {
        let circuit = b.generate(8, Seed(3));
        let out = t.transpile(&circuit, &device);
        assert_equivalent(&circuit, &device, &out);
    }
}

#[test]
fn equivalence_holds_on_a_two_chip_mcm() {
    // Routing across an inter-chip link must also preserve semantics.
    let device = McmSpec::new(ChipletSpec::with_qubits(10).unwrap(), 1, 2).build();
    let t = Transpiler::paper();
    for b in [Benchmark::Ghz, Benchmark::Bv, Benchmark::Qaoa] {
        let circuit = b.generate(16, Seed(4));
        let out = t.transpile(&circuit, &device);
        assert_equivalent(&circuit, &device, &out);
    }
}

#[test]
fn equivalence_with_direction_enforcement() {
    let device = ChipletSpec::with_qubits(10).unwrap().build();
    let t = Transpiler { enforce_direction: true, ..Transpiler::paper() };
    let circuit = Benchmark::Ghz.generate(8, Seed(5));
    let out = t.transpile(&circuit, &device);
    assert_equivalent(&circuit, &device, &out);
}

#[test]
fn basis_decomposition_preserves_every_gate_type() {
    let mut c = Circuit::new(3);
    c.h(Qubit(0))
        .rx(Qubit(1), 0.7)
        .ry(Qubit(2), -1.2)
        .rz(Qubit(0), 0.4)
        .sx(Qubit(1))
        .x(Qubit(2))
        .cx(Qubit(0), Qubit(1))
        .swap(Qubit(1), Qubit(2))
        .rzz(Qubit(0), Qubit(2), 0.9);
    let basis = to_basis(&c);
    assert!(basis.gates().iter().all(Gate::is_basis));
    assert!(State::run(&c).approx_eq_global_phase(&State::run(&basis), 1e-8));
}

#[test]
fn merge_rz_preserves_semantics() {
    let mut c = Circuit::new(2);
    c.rz(Qubit(0), 0.3)
        .rz(Qubit(0), 0.5)
        .h(Qubit(1))
        .cx(Qubit(0), Qubit(1))
        .rz(Qubit(1), -0.8)
        .rz(Qubit(1), 0.8)
        .rz(Qubit(0), 1.1);
    let merged = merge_rz(&to_basis(&c));
    assert!(State::run(&to_basis(&c)).approx_eq_global_phase(&State::run(&merged), 1e-8));
    assert!(merged.count_1q() < to_basis(&c).count_1q());
}

#[test]
fn random_circuits_transpile_equivalently() {
    use chipletqc_benchmarks::primacy::{primacy_circuit, PrimacyParams};
    let device = ChipletSpec::with_qubits(20).unwrap().build();
    let t = Transpiler::paper();
    for seed in 0..5 {
        let circuit = primacy_circuit(10, &PrimacyParams { cycles: 6 }, Seed(seed));
        let out = t.transpile(&circuit, &device);
        assert_equivalent(&circuit, &device, &out);
    }
}
