//! The noise-aware layout extension must translate into measurable ESP
//! gains when the device has a bad neighborhood — the "intelligent
//! compilation routines that consider links" the paper's future-work
//! section calls for.

use chipletqc_benchmarks::suite::Benchmark;
use chipletqc_math::rng::Seed;
use chipletqc_noise::assign::EdgeNoise;
use chipletqc_topology::family::ChipletSpec;
use chipletqc_topology::mcm::McmSpec;
use chipletqc_transpile::layout::noise_aware_layout;
use chipletqc_transpile::pipeline::Transpiler;

#[test]
fn noise_aware_layout_beats_default_on_a_blighted_device() {
    let device = ChipletSpec::with_qubits(60).unwrap().build();
    // Poison a third of the chip.
    let infid: Vec<f64> = device
        .edges()
        .iter()
        .map(|e| if e.a.0 < 20 || e.b.0 < 20 { 0.15 } else { 0.008 })
        .collect();
    let noise = EdgeNoise::from_infidelities(infid);
    let circuit = Benchmark::Ghz.generate(24, Seed(1));
    let t = Transpiler::paper();

    let default = t.transpile(&circuit, &device);
    let aware = t.transpile_with_layout(
        &circuit,
        &device,
        noise_aware_layout(&device, &noise, circuit.num_qubits()),
    );
    assert!(aware.respects_connectivity(&device));
    let esp_default = default.esp(&device, &noise).ln();
    let esp_aware = aware.esp(&device, &noise).ln();
    assert!(
        esp_aware > esp_default,
        "noise-aware {esp_aware:.3} should beat default {esp_default:.3}"
    );
}

#[test]
fn noise_aware_layout_avoids_expensive_links_on_mcms() {
    // On an MCM with state-of-the-art (4x worse) links, a circuit that
    // fits on a single chiplet should be placed without crossing dies.
    let spec = McmSpec::new(ChipletSpec::with_qubits(40).unwrap(), 2, 2);
    let device = spec.build();
    let infid: Vec<f64> = device
        .edges()
        .iter()
        .map(|e| if e.kind.is_inter_chip() { 0.075 } else { 0.012 })
        .collect();
    let noise = EdgeNoise::from_infidelities(infid);
    let circuit = Benchmark::Ghz.generate(30, Seed(2));
    let layout = noise_aware_layout(&device, &noise, circuit.num_qubits());
    // All 30 logical qubits on one chip.
    let chips: std::collections::HashSet<u16> = (0..30u32)
        .map(|l| device.chip(layout.physical(chipletqc_circuit::qubit::Qubit(l))).0)
        .collect();
    assert_eq!(chips.len(), 1, "placement crossed chips: {chips:?}");
}
