//! Deterministic, splittable random-number handling.
//!
//! Every stochastic component of the workspace (fabrication sampling,
//! noise assignment, assembly shuffling, random benchmark circuits) takes
//! a seed or an `&mut StdRng` explicitly so that each experiment is
//! reproducible bit-for-bit from one [`Seed`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible seed for every Monte Carlo component in the workspace.
///
/// `Seed` is a thin newtype over `u64` so that seeds cannot be confused
/// with counts or sizes in argument lists (C-NEWTYPE).
///
/// # Example
///
/// ```
/// use chipletqc_math::rng::Seed;
/// use rand::Rng;
///
/// let mut a = Seed(42).rng();
/// let mut b = Seed(42).rng();
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Seed(pub u64);

impl Seed {
    /// Creates the [`StdRng`] associated with this seed.
    pub fn rng(self) -> StdRng {
        StdRng::seed_from_u64(self.0)
    }

    /// Derives an independent child seed for a named sub-stream.
    ///
    /// Splitting avoids correlated streams when an experiment hands
    /// sub-seeds to parallel workers: `seed.split(worker_index)` gives
    /// each worker a decorrelated generator while the whole experiment
    /// remains a pure function of the root seed.
    ///
    /// The mixing function is SplitMix64, whose output is equidistributed
    /// over `u64`.
    #[must_use]
    pub fn split(self, stream: u64) -> Seed {
        Seed(splitmix64(self.0 ^ splitmix64(stream.wrapping_add(0x9E37_79B9_7F4A_7C15))))
    }

    /// Derives a child seed from a textual label.
    ///
    /// Useful when an experiment has several conceptually distinct
    /// sub-streams ("fabrication", "noise", "assembly") and index-based
    /// splitting would be error-prone.
    #[must_use]
    pub fn split_str(self, label: &str) -> Seed {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.split(h)
    }
}

impl From<u64> for Seed {
    fn from(value: u64) -> Self {
        Seed(value)
    }
}

impl std::fmt::Display for Seed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed:{}", self.0)
    }
}

/// The SplitMix64 mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws a uniformly random `f64` in the open interval `(0, 1)`.
///
/// Guaranteed never to return exactly `0.0` or `1.0`, which makes it safe
/// as input to `ln` in Box–Muller sampling.
pub fn open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

/// Shuffles a slice in place with the Fisher–Yates algorithm.
///
/// `rand` provides `SliceRandom::shuffle`, but routing all shuffles
/// through this function keeps the workspace's RNG consumption auditable
/// (the MCM assembler's reshuffle loop counts RNG draws in tests).
pub fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Seed(123).rng();
        let mut b = Seed(123).rng();
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Seed(1).rng();
        let mut b = Seed(2).rng();
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn split_is_deterministic_and_decorrelated() {
        let root = Seed(7);
        assert_eq!(root.split(0), root.split(0));
        assert_ne!(root.split(0), root.split(1));
        assert_ne!(root.split(0), root);
        // A split child must not equal the parent's other children.
        let children: Vec<Seed> = (0..100).map(|i| root.split(i)).collect();
        let mut dedup = children.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), children.len());
    }

    #[test]
    fn split_str_distinguishes_labels() {
        let root = Seed(7);
        assert_ne!(root.split_str("fabrication"), root.split_str("noise"));
        assert_eq!(root.split_str("noise"), root.split_str("noise"));
    }

    #[test]
    fn open_unit_stays_open() {
        let mut rng = Seed(5).rng();
        for _ in 0..10_000 {
            let u = open_unit(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Seed(9).rng();
        let mut v: Vec<u32> = (0..50).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_moves_things() {
        let mut rng = Seed(9).rng();
        let original: Vec<u32> = (0..50).collect();
        let mut v = original.clone();
        shuffle(&mut v, &mut rng);
        assert_ne!(v, original);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Seed(3).to_string(), "seed:3");
    }
}
