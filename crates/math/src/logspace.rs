//! Log-domain probability products.
//!
//! The paper's application figure of merit is the *fidelity product of all
//! two-qubit gates* (an ESP-style metric, Section VII-B). A 360-qubit
//! system runs benchmarks with up to ~20k two-qubit gates at ~1–10 %
//! infidelity each, so the product is on the order of `10^-100` and
//! smaller — far below `f64::MIN_POSITIVE`. All ESP math therefore runs in
//! natural-log space and is only exponentiated for display when safe.

/// A product of probabilities accumulated in natural-log space.
///
/// # Example
///
/// ```
/// use chipletqc_math::logspace::LogProduct;
///
/// let mut esp = LogProduct::one();
/// for _ in 0..10_000 {
///     esp.mul_prob(0.99); // 1% infidelity per gate
/// }
/// // 0.99^10000 underflows intuition but not the accumulator:
/// assert!((esp.log10() - 10_000.0 * 0.99f64.log10()).abs() < 1e-6);
/// assert_eq!(esp.factors(), 10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogProduct {
    ln: f64,
    factors: usize,
}

impl LogProduct {
    /// The empty product (probability 1).
    pub fn one() -> LogProduct {
        LogProduct { ln: 0.0, factors: 0 }
    }

    /// Multiplies by a probability in `[0, 1]`.
    ///
    /// A factor of exactly `0.0` collapses the product to zero
    /// (`ln = -inf`), which is the correct ESP for a circuit crossing a
    /// dead link.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN, negative, or greater than 1.
    pub fn mul_prob(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.ln += p.ln();
        self.factors += 1;
    }

    /// Multiplies by `p` raised to the `n`-th power — `n` repeated
    /// gates over the same coupling in one step.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN, negative, or greater than 1.
    pub fn mul_prob_pow(&mut self, p: f64, n: usize) {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        if n == 0 {
            return;
        }
        self.ln += p.ln() * n as f64;
        self.factors += n;
    }

    /// Multiplies by another log-product.
    pub fn mul(&mut self, other: LogProduct) {
        self.ln += other.ln;
        self.factors += other.factors;
    }

    /// The natural log of the product.
    pub fn ln(&self) -> f64 {
        self.ln
    }

    /// The base-10 log of the product (what the Fig. 10 reproduction
    /// reports, since ratios span hundreds of orders of magnitude).
    pub fn log10(&self) -> f64 {
        self.ln / std::f64::consts::LN_10
    }

    /// The product as a plain `f64`; underflows to `0.0` for very small
    /// products, which is why callers that compare ESPs use [`Self::ln`].
    pub fn value(&self) -> f64 {
        self.ln.exp()
    }

    /// The number of factors multiplied in so far.
    pub fn factors(&self) -> usize {
        self.factors
    }

    /// The geometric mean of the factors, `exp(ln / n)`.
    ///
    /// For an ESP this is the "average per-gate fidelity" — a
    /// size-independent quality number useful when comparing circuits of
    /// different gate counts.
    pub fn geometric_mean_factor(&self) -> f64 {
        if self.factors == 0 {
            return 1.0;
        }
        (self.ln / self.factors as f64).exp()
    }
}

impl Default for LogProduct {
    fn default() -> Self {
        LogProduct::one()
    }
}

impl std::fmt::Display for LogProduct {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "10^{:.3} ({} factors)", self.log10(), self.factors)
    }
}

/// The geometric mean of a set of log-space values (`ln` units).
///
/// Population ESP comparisons average in log space: the arithmetic mean of
/// underflowing ESPs would be dominated by rounding, while the geometric
/// mean is exactly the mean of the logs.
pub fn mean_ln(lns: &[f64]) -> f64 {
    if lns.is_empty() {
        return f64::NAN;
    }
    lns.iter().sum::<f64>() / lns.len() as f64
}

/// Converts a natural-log value to log10.
pub fn ln_to_log10(ln: f64) -> f64 {
    ln / std::f64::consts::LN_10
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_is_identity() {
        let p = LogProduct::one();
        assert_eq!(p.value(), 1.0);
        assert_eq!(p.factors(), 0);
        assert_eq!(p.geometric_mean_factor(), 1.0);
    }

    #[test]
    fn small_products_match_direct_multiplication() {
        let mut p = LogProduct::one();
        p.mul_prob(0.9);
        p.mul_prob(0.8);
        p.mul_prob(0.5);
        assert!((p.value() - 0.36).abs() < 1e-12);
        assert_eq!(p.factors(), 3);
    }

    #[test]
    fn zero_factor_collapses() {
        let mut p = LogProduct::one();
        p.mul_prob(0.9);
        p.mul_prob(0.0);
        assert_eq!(p.value(), 0.0);
        assert!(p.ln().is_infinite() && p.ln() < 0.0);
    }

    #[test]
    fn huge_products_do_not_underflow() {
        let mut p = LogProduct::one();
        for _ in 0..100_000 {
            p.mul_prob(0.98);
        }
        // 0.98^100000 ~ 10^-877: the f64 value underflows...
        assert_eq!(p.value(), 0.0);
        // ...but the log survives.
        assert!((p.log10() - 100_000.0 * 0.98f64.log10()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_probability_above_one() {
        LogProduct::one().mul_prob(1.5);
    }

    #[test]
    fn mul_combines_products() {
        let mut a = LogProduct::one();
        a.mul_prob(0.5);
        let mut b = LogProduct::one();
        b.mul_prob(0.25);
        a.mul(b);
        assert!((a.value() - 0.125).abs() < 1e-12);
        assert_eq!(a.factors(), 2);
    }

    #[test]
    fn geometric_mean_factor_recovers_uniform_fidelity() {
        let mut p = LogProduct::one();
        for _ in 0..777 {
            p.mul_prob(0.987);
        }
        assert!((p.geometric_mean_factor() - 0.987).abs() < 1e-9);
    }

    #[test]
    fn mean_ln_and_conversion() {
        assert!((mean_ln(&[0.0, (0.01f64).ln()]) - 0.5 * (0.01f64).ln()).abs() < 1e-12);
        assert!(mean_ln(&[]).is_nan());
        assert!((ln_to_log10(std::f64::consts::LN_10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_factors() {
        let mut p = LogProduct::one();
        p.mul_prob(0.5);
        assert!(p.to_string().contains("1 factors"));
    }
}
