//! Fixed-width binning.
//!
//! The paper's empirical fidelity model bins Washington calibration data
//! "according to detuning intervals of step-size 0.1 GHz" (Section VI-A)
//! and then assigns gate fidelity "by sampling from the distribution of
//! the corresponding bin". [`Binning`] is that bin index machinery;
//! the sampling model itself lives in `chipletqc-noise`.

/// A fixed-width binning of a half-open interval `[origin, ∞)`.
///
/// # Example
///
/// ```
/// use chipletqc_math::histogram::Binning;
///
/// // The paper's 0.1 GHz detuning bins.
/// let bins = Binning::new(0.0, 0.1).unwrap();
/// assert_eq!(bins.index_of(0.05), 0);
/// assert_eq!(bins.index_of(0.1), 1);
/// assert_eq!(bins.range(1), (0.1, 0.2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binning {
    origin: f64,
    width: f64,
}

/// Error constructing a [`Binning`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidBinWidth;

impl std::fmt::Display for InvalidBinWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bin width must be finite and positive")
    }
}

impl std::error::Error for InvalidBinWidth {}

impl Binning {
    /// Creates a binning starting at `origin` with bins of `width`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidBinWidth`] unless `width` is finite and positive
    /// and `origin` is finite.
    pub fn new(origin: f64, width: f64) -> Result<Binning, InvalidBinWidth> {
        if !width.is_finite() || width <= 0.0 || !origin.is_finite() {
            return Err(InvalidBinWidth);
        }
        Ok(Binning { origin, width })
    }

    /// The bin width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The binning origin.
    pub fn origin(&self) -> f64 {
        self.origin
    }

    /// The index of the bin containing `x`.
    ///
    /// Values below `origin` clamp into bin 0 (detunings are absolute
    /// values in the noise model, so this is a safety clamp rather than a
    /// hot path).
    pub fn index_of(&self, x: f64) -> usize {
        if x <= self.origin {
            return 0;
        }
        ((x - self.origin) / self.width).floor() as usize
    }

    /// The half-open range `[lo, hi)` of bin `index`.
    pub fn range(&self, index: usize) -> (f64, f64) {
        let lo = self.origin + index as f64 * self.width;
        (lo, lo + self.width)
    }

    /// The center of bin `index`.
    pub fn center(&self, index: usize) -> f64 {
        self.origin + (index as f64 + 0.5) * self.width
    }
}

/// A histogram of `f64` samples grouped by a [`Binning`], retaining the
/// samples per bin (the noise model bootstraps from bin members).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleHistogram {
    binning: Binning,
    bins: Vec<Vec<f64>>,
}

impl SampleHistogram {
    /// Creates an empty histogram.
    pub fn new(binning: Binning) -> SampleHistogram {
        SampleHistogram { binning, bins: Vec::new() }
    }

    /// Adds a `(key, value)` pair; the bin is selected by `key` and the
    /// stored sample is `value`.
    pub fn insert(&mut self, key: f64, value: f64) {
        let idx = self.binning.index_of(key);
        if idx >= self.bins.len() {
            self.bins.resize_with(idx + 1, Vec::new);
        }
        self.bins[idx].push(value);
    }

    /// The binning in use.
    pub fn binning(&self) -> Binning {
        self.binning
    }

    /// The number of allocated bins (trailing empty bins are not
    /// trimmed).
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// The samples stored in bin `index` (empty slice if out of range).
    pub fn samples(&self, index: usize) -> &[f64] {
        self.bins.get(index).map_or(&[], Vec::as_slice)
    }

    /// The samples of the bin containing `key`.
    pub fn samples_for(&self, key: f64) -> &[f64] {
        self.samples(self.binning.index_of(key))
    }

    /// The nearest non-empty bin index to `index`, if any bin is
    /// non-empty. Ties prefer the lower bin.
    ///
    /// Bin populations thin out at extreme detunings; the noise model
    /// falls back to the nearest populated bin exactly because the paper's
    /// framework "allows the sampling bounds to be adjusted".
    pub fn nearest_populated(&self, index: usize) -> Option<usize> {
        if self.bins.get(index).is_some_and(|b| !b.is_empty()) {
            return Some(index);
        }
        let mut best: Option<(usize, usize)> = None; // (distance, idx)
        for (i, bin) in self.bins.iter().enumerate() {
            if bin.is_empty() {
                continue;
            }
            let dist = i.abs_diff(index);
            if best.is_none_or(|(bd, _)| dist < bd) {
                best = Some((dist, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Total number of stored samples.
    pub fn len(&self) -> usize {
        self.bins.iter().map(Vec::len).sum()
    }

    /// Whether the histogram holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterator over `(bin_index, samples)` for non-empty bins.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64])> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, b)| (i, b.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_rejects_bad_width() {
        assert!(Binning::new(0.0, 0.0).is_err());
        assert!(Binning::new(0.0, -0.1).is_err());
        assert!(Binning::new(f64::NAN, 0.1).is_err());
        assert!(Binning::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn index_and_range_roundtrip() {
        let b = Binning::new(0.0, 0.1).unwrap();
        for i in 0..20 {
            let (lo, hi) = b.range(i);
            assert_eq!(b.index_of(lo), i);
            assert_eq!(b.index_of((lo + hi) / 2.0), i);
            assert!((b.center(i) - (lo + hi) / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn below_origin_clamps_to_zero() {
        let b = Binning::new(0.0, 0.1).unwrap();
        assert_eq!(b.index_of(-0.5), 0);
    }

    #[test]
    fn histogram_groups_samples() {
        let mut h = SampleHistogram::new(Binning::new(0.0, 0.1).unwrap());
        h.insert(0.05, 1.0);
        h.insert(0.07, 2.0);
        h.insert(0.23, 3.0);
        assert_eq!(h.samples_for(0.01), &[1.0, 2.0]);
        assert_eq!(h.samples(2), &[3.0]);
        assert_eq!(h.samples(9), &[] as &[f64]);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
    }

    #[test]
    fn nearest_populated_fallback() {
        let mut h = SampleHistogram::new(Binning::new(0.0, 0.1).unwrap());
        assert_eq!(h.nearest_populated(0), None);
        h.insert(0.35, 9.0); // bin 3
        assert_eq!(h.nearest_populated(0), Some(3));
        assert_eq!(h.nearest_populated(3), Some(3));
        assert_eq!(h.nearest_populated(7), Some(3));
        h.insert(0.05, 1.0); // bin 0
        assert_eq!(h.nearest_populated(1), Some(0)); // tie at dist 1? bin0 dist1, bin3 dist2 -> bin0
        assert_eq!(h.nearest_populated(2), Some(3)); // bin0 dist2, bin3 dist1 -> bin3
    }

    #[test]
    fn iter_skips_empty_bins() {
        let mut h = SampleHistogram::new(Binning::new(0.0, 1.0).unwrap());
        h.insert(0.5, 1.0);
        h.insert(5.5, 2.0);
        let seen: Vec<usize> = h.iter().map(|(i, _)| i).collect();
        assert_eq!(seen, vec![0, 5]);
    }
}
