//! Log-domain combinatorics for configuration counting.
//!
//! Fig. 6 of the paper plots the number of possible MCM configurations
//! against MCM size: with ~69k collision-free 20-qubit chiplets, the
//! number of ways to populate an m×m module grows factorially and exceeds
//! `u128` for even a 2×2 module, so every count here is carried as
//! `log10`.

/// Natural log of `n!`, exact summation below 256 and the Stirling series
/// above (relative error < 1e-12 in that regime).
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 256 {
        return (2..=n).map(|k| (k as f64).ln()).sum();
    }
    let n = n as f64;
    // Stirling series with 1/(12n) and 1/(360n^3) correction terms.
    n * n.ln() - n + 0.5 * (2.0 * std::f64::consts::PI * n).ln() + 1.0 / (12.0 * n)
        - 1.0 / (360.0 * n * n * n)
}

/// Base-10 log of `n!`.
pub fn log10_factorial(n: u64) -> f64 {
    ln_factorial(n) / std::f64::consts::LN_10
}

/// Base-10 log of the number of ordered arrangements `P(n, k) = n!/(n−k)!`.
///
/// This is the Fig. 6 "potential configurations" count: `k = k·m` slots in
/// an MCM filled from `n` distinguishable collision-free chiplets, order
/// (placement) mattering.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (no arrangement exists).
pub fn log10_permutations(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    log10_factorial(n) - log10_factorial(n - k)
}

/// Base-10 log of the binomial coefficient `C(n, k)`.
pub fn log10_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    log10_factorial(n) - log10_factorial(k) - log10_factorial(n - k)
}

/// All factor pairs `(k, m)` of `n` with `k <= m`, sorted by descending
/// squareness (ascending `m − k`).
///
/// The paper prioritizes "more square" MCM dimensions "to reduce topology
/// graph diameter" (Section VII-B); `factor_pairs(n)[0]` is exactly that
/// choice.
///
/// # Example
///
/// ```
/// use chipletqc_math::combinatorics::factor_pairs;
///
/// assert_eq!(factor_pairs(12)[0], (3, 4));
/// assert_eq!(factor_pairs(4)[0], (2, 2));  // the paper keeps 2x2 ...
/// assert_eq!(*factor_pairs(4).last().unwrap(), (1, 4)); // ... not 4x1
/// ```
pub fn factor_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut k = 1;
    while k * k <= n {
        if n.is_multiple_of(k) {
            pairs.push((k, n / k));
        }
        k += 1;
    }
    pairs.sort_by_key(|(a, b)| b - a);
    pairs
}

/// The most-square factorization of `n` (see [`factor_pairs`]).
pub fn most_square_dims(n: usize) -> (usize, usize) {
    factor_pairs(n)[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_factorials_exact() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((log10_factorial(10) - 3_628_800f64.log10()).abs() < 1e-12);
    }

    #[test]
    fn stirling_matches_exact_at_boundary() {
        // Compare the series against exact summation around the switch point.
        let exact: f64 = (2..=300u64).map(|k| (k as f64).ln()).sum();
        assert!((ln_factorial(300) - exact).abs() / exact < 1e-12);
    }

    #[test]
    fn permutations_match_small_cases() {
        // P(5, 2) = 20.
        assert!((log10_permutations(5, 2) - 20f64.log10()).abs() < 1e-12);
        // P(n, 0) = 1.
        assert_eq!(log10_permutations(9, 0), 0.0);
        assert_eq!(log10_permutations(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn fig6_scale_configuration_count() {
        // With 69,421 collision-free chiplets, a 2x2 MCM has
        // P(69421, 4) ~ 69421^4 ~ 10^19.4 configurations.
        let log_count = log10_permutations(69_421, 4);
        assert!(log_count > 19.0 && log_count < 19.5, "log10 = {log_count}");
        // A 6x6 MCM: P(69421, 36) ~ 10^174.
        let log36 = log10_permutations(69_421, 36);
        assert!(log36 > 170.0 && log36 < 180.0, "log10 = {log36}");
    }

    #[test]
    fn binomial_matches_small_cases() {
        assert!((log10_binomial(5, 2) - 10f64.log10()).abs() < 1e-12);
        assert_eq!(log10_binomial(5, 0), 0.0);
        assert_eq!(log10_binomial(2, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn factor_pairs_square_first() {
        assert_eq!(factor_pairs(36)[0], (6, 6));
        assert_eq!(factor_pairs(2), vec![(1, 2)]);
        assert_eq!(most_square_dims(49), (7, 7));
        assert_eq!(most_square_dims(10), (2, 5));
        assert_eq!(most_square_dims(7), (1, 7));
    }

    #[test]
    fn factor_pairs_cover_all_divisors() {
        let pairs = factor_pairs(24);
        assert_eq!(pairs.len(), 4); // (4,6), (3,8), (2,12), (1,24)
        for (k, m) in pairs {
            assert_eq!(k * m, 24);
            assert!(k <= m);
        }
    }
}
