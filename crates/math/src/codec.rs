//! A minimal, deterministic binary codec for persisted products.
//!
//! The result store (`chipletqc-store`) persists fabrication and
//! characterization products across processes. Rust's ecosystem answer
//! would be `serde` + `bincode`, but this workspace builds without
//! crates.io access, so this module pins the exact subset the store
//! needs: little-endian fixed-width scalars, length-prefixed
//! sequences, and a [`Codec`] trait the product types implement in
//! their owning crates.
//!
//! Two properties matter more than generality:
//!
//! * **Bit-exactness** — `f64` values round-trip through
//!   [`f64::to_le_bytes`], so a decoded product is bit-identical to
//!   the encoded one. This is what lets a warm store reproduce the
//!   byte-identical run reports the engine's determinism tests pin.
//! * **Hostile-input safety** — decoding validates every length
//!   against the remaining input before allocating, and every value
//!   against its domain, so a truncated or corrupted store entry
//!   surfaces as a [`CodecError`] (which the store treats as a cache
//!   miss), never as a panic or an absurd allocation.

/// Errors surfaced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// The bytes decoded but violate the type's invariants.
    Invalid(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, {available} available")
            }
            CodecError::Invalid(why) => write!(f, "invalid encoding: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only byte buffer with fixed-width little-endian writers.
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the on-disk format is
    /// pointer-width independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` by its exact little-endian bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.put_bytes(s.as_bytes());
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, values: &[f64]) {
        self.put_usize(values.len());
        for v in values {
            self.put_f64(*v);
        }
    }

    /// Writes a length-prefixed sequence of encodable values.
    pub fn put_seq<T: Codec>(&mut self, values: &[T]) {
        self.put_usize(values.len());
        for v in values {
            v.encode(self);
        }
    }
}

/// A cursor over encoded bytes with bounds-checked readers.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { needed: n, available: self.remaining() });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting values that
    /// do not fit the platform.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| CodecError::Invalid("length exceeds usize".into()))
    }

    /// Reads an `f64` from its exact bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a sequence length written by one of the `put_*` sequence
    /// writers and checks that `len * min_elem_bytes` more input
    /// actually exists — a corrupted length can therefore never drive
    /// an absurd allocation.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = self.get_usize()?;
        let needed = len.saturating_mul(min_elem_bytes.max(1));
        if needed > self.remaining() {
            return Err(CodecError::Truncated { needed, available: self.remaining() });
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Invalid("string is not UTF-8".into()))
    }

    /// Reads a length-prefixed `f64` slice.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let len = self.get_len(8)?;
        (0..len).map(|_| self.get_f64()).collect()
    }

    /// Reads a length-prefixed sequence of decodable values.
    pub fn get_seq<T: Codec>(&mut self) -> Result<Vec<T>, CodecError> {
        let len = self.get_len(1)?;
        (0..len).map(|_| T::decode(self)).collect()
    }
}

/// A type with a deterministic binary encoding.
///
/// Implementations live in the crate that owns the type (so they can
/// reach private fields and re-establish invariants on decode); the
/// store composes them into envelope payloads.
pub trait Codec: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut ByteWriter);

    /// Decodes one value, validating the type's invariants.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;
}

/// Encodes a value to a fresh byte vector.
pub fn encode_to_vec<T: Codec>(value: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value from `bytes`, requiring every byte to be consumed
/// (trailing garbage is corruption, not padding).
pub fn decode_from_slice<T: Codec>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = ByteReader::new(bytes);
    let value = T::decode(&mut r)?;
    if !r.is_exhausted() {
        return Err(CodecError::Invalid(format!("{} trailing bytes", r.remaining())));
    }
    Ok(value)
}

impl Codec for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_u64()
    }
}

impl Codec for usize {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_usize()
    }
}

impl Codec for f64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_f64()
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_seq(self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_seq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_bit_exactly() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_f64(-0.0);
        w.put_f64(f64::MIN_POSITIVE);
        w.put_f64(0.1 + 0.2);
        w.put_str("chipletqc");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.get_f64().unwrap(), 0.1 + 0.2);
        assert_eq!(r.get_str().unwrap(), "chipletqc");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = encode_to_vec(&vec![1.0f64, 2.0, 3.0]);
        for cut in 0..bytes.len() {
            let err = decode_from_slice::<Vec<f64>>(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, CodecError::Truncated { .. }), "cut {cut}: {err}");
        }
        assert_eq!(decode_from_slice::<Vec<f64>>(&bytes).unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&7u64);
        bytes.push(0);
        assert!(matches!(
            decode_from_slice::<u64>(&bytes).unwrap_err(),
            CodecError::Invalid(_)
        ));
    }

    #[test]
    fn corrupt_length_cannot_drive_allocation() {
        // A sequence claiming u64::MAX elements with 8 bytes of body.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        w.put_f64(1.0);
        let bytes = w.into_bytes();
        let err = decode_from_slice::<Vec<f64>>(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. } | CodecError::Invalid(_)));
    }

    #[test]
    fn composite_values_round_trip() {
        let value: Vec<(u64, f64)> = vec![(1, 0.5), (2, -1.25)];
        let bytes = encode_to_vec(&value);
        assert_eq!(decode_from_slice::<Vec<(u64, f64)>>(&bytes).unwrap(), value);
        let pair = (3usize, 4u64);
        assert_eq!(decode_from_slice::<(usize, u64)>(&encode_to_vec(&pair)).unwrap(), pair);
    }

    #[test]
    fn errors_display() {
        assert!(CodecError::Truncated { needed: 8, available: 3 }
            .to_string()
            .contains("needed 8"));
        assert!(CodecError::Invalid("bad".into()).to_string().contains("bad"));
    }
}
