//! Numeric substrate for the `chipletqc` workspace.
//!
//! This crate deliberately owns everything numeric that the rest of the
//! workspace needs so that the simulation crates stay focused on the
//! architecture models of the paper:
//!
//! * [`rng`] — deterministic, splittable random-number handling built on
//!   [`rand::rngs::StdRng`]. Every Monte Carlo experiment in the workspace
//!   is reproducible from a single [`rng::Seed`].
//! * [`dist`] — Normal and LogNormal sampling implemented with the polar
//!   Box–Muller method (no dependency on `rand_distr`).
//! * [`stats`] — summary statistics: mean, variance, median, arbitrary
//!   quantiles, and five-number box-plot summaries (used by the Fig. 3(b)
//!   reproduction).
//! * [`logspace`] — log-domain probability products. Estimated success
//!   probability (ESP) multiplies thousands of per-gate fidelities and
//!   underflows `f64`; all ESP math in the workspace goes through
//!   [`logspace::LogProduct`].
//! * [`combinatorics`] — log-factorials and permutation counts for the
//!   Fig. 6 configuration-count reproduction (the counts overflow `u128`
//!   almost immediately, so they are reported as `log10`).
//! * [`histogram`] — fixed-width binning used by the empirical
//!   detuning→infidelity model of Fig. 7.
//! * [`codec`] — the deterministic binary codec behind the
//!   `chipletqc-store` persistent result store (the workspace builds
//!   without crates.io access, so no `serde`).
//!
//! # Example
//!
//! ```
//! use chipletqc_math::rng::Seed;
//! use chipletqc_math::dist::Normal;
//! use chipletqc_math::stats::mean;
//!
//! let mut rng = Seed(7).rng();
//! let dist = Normal::new(5.0, 0.014).unwrap();
//! let samples: Vec<f64> = (0..1000).map(|_| dist.sample(&mut rng)).collect();
//! assert!((mean(&samples) - 5.0).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod combinatorics;
pub mod dist;
pub mod histogram;
pub mod logspace;
pub mod rng;
pub mod stats;

pub use dist::{LogNormal, Normal};
pub use logspace::LogProduct;
pub use rng::Seed;
