//! Normal and LogNormal sampling.
//!
//! The paper's fabrication model draws every qubit frequency from
//! `N(F_target, σ_f)` (Section IV-B), and our flip-chip link noise model
//! uses a LogNormal infidelity distribution matched to the mean/median the
//! paper quotes from Gold et al. Rather than pulling in `rand_distr`
//! (which is not on the approved dependency list), both distributions are
//! implemented here with the polar Box–Muller method.

use rand::Rng;

use crate::rng::open_unit;

/// Error returned when constructing a distribution with invalid
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistError {
    /// The standard deviation was negative or non-finite.
    InvalidStdDev,
    /// A location parameter was non-finite.
    InvalidLocation,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::InvalidStdDev => write!(f, "standard deviation must be finite and >= 0"),
            DistError::InvalidLocation => write!(f, "location parameter must be finite"),
        }
    }
}

impl std::error::Error for DistError {}

/// A normal (Gaussian) distribution `N(mean, std_dev²)`.
///
/// # Example
///
/// ```
/// use chipletqc_math::dist::Normal;
/// use chipletqc_math::rng::Seed;
///
/// // The paper's state-of-the-art fabrication precision.
/// let fab = Normal::new(5.06, 0.014).unwrap();
/// let mut rng = Seed(1).rng();
/// let f = fab.sample(&mut rng);
/// assert!((f - 5.06).abs() < 0.014 * 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidStdDev`] if `std_dev` is negative, NaN,
    /// or infinite, and [`DistError::InvalidLocation`] if `mean` is not
    /// finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, DistError> {
        if !mean.is_finite() {
            return Err(DistError::InvalidLocation);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DistError::InvalidStdDev);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }

    /// The cumulative distribution function `P(X <= x)`.
    ///
    /// Used by the analytic yield estimator to cross-check the Monte
    /// Carlo simulation (DESIGN.md §9).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x < self.mean { 0.0 } else { 1.0 };
        }
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Probability that a sample falls inside the closed interval
    /// `[lo, hi]`.
    pub fn prob_in(&self, lo: f64, hi: f64) -> f64 {
        if lo > hi {
            return 0.0;
        }
        (self.cdf(hi) - self.cdf(lo)).max(0.0)
    }
}

/// A log-normal distribution: `exp(N(mu, sigma²))`.
///
/// Parameterized by the *location* `mu` and *scale* `sigma` of the
/// underlying normal. Convenience constructors match the way the paper's
/// sources report link statistics (mean + median).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from the underlying normal's
    /// location and scale.
    ///
    /// # Errors
    ///
    /// Returns an error if `mu` is not finite or `sigma` is negative or
    /// non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, DistError> {
        if !mu.is_finite() {
            return Err(DistError::InvalidLocation);
        }
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(DistError::InvalidStdDev);
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Creates the unique log-normal with the given `mean` and `median`.
    ///
    /// This mirrors how Gold et al. report flip-chip link fidelity
    /// (average 92.5 %, median 94.4 %), i.e. infidelity mean 0.075 and
    /// median 0.056: `median = exp(mu)` and
    /// `mean = exp(mu + sigma²/2)` give
    /// `sigma = sqrt(2 ln(mean/median))`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < median <= mean` and both are finite.
    pub fn from_mean_median(mean: f64, median: f64) -> Result<LogNormal, DistError> {
        if !(mean.is_finite() && median.is_finite()) || median <= 0.0 {
            return Err(DistError::InvalidLocation);
        }
        if mean < median {
            return Err(DistError::InvalidStdDev);
        }
        let mu = median.ln();
        let sigma = (2.0 * (mean / median).ln()).sqrt();
        LogNormal::new(mu, sigma)
    }

    /// Location parameter of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The distribution mean, `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// The distribution median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Draws one standard-normal variate with the polar Box–Muller method.
///
/// The textbook optimization that caches the second variate is skipped on
/// purpose: it would make sampling stateful, and the workspace's
/// reproducibility tests rely on sampling being a pure function of the
/// RNG stream position.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * open_unit(rng) - 1.0;
        let v = 2.0 * open_unit(rng) - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// The error function, via the Abramowitz–Stegun 7.1.26 rational
/// approximation (absolute error < 1.5e-7, ample for yield estimates).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Seed;
    use crate::stats::{mean, std_dev};

    #[test]
    fn normal_rejects_bad_params() {
        assert_eq!(Normal::new(0.0, -1.0).unwrap_err(), DistError::InvalidStdDev);
        assert_eq!(Normal::new(f64::NAN, 1.0).unwrap_err(), DistError::InvalidLocation);
        assert_eq!(Normal::new(0.0, f64::INFINITY).unwrap_err(), DistError::InvalidStdDev);
    }

    #[test]
    fn normal_moments_match() {
        let dist = Normal::new(5.0, 0.1).unwrap();
        let mut rng = Seed(11).rng();
        let samples: Vec<f64> = (0..50_000).map(|_| dist.sample(&mut rng)).collect();
        assert!((mean(&samples) - 5.0).abs() < 2e-3);
        assert!((std_dev(&samples) - 0.1).abs() < 2e-3);
    }

    #[test]
    fn normal_zero_sigma_is_degenerate() {
        let dist = Normal::new(2.0, 0.0).unwrap();
        let mut rng = Seed(1).rng();
        assert_eq!(dist.sample(&mut rng), 2.0);
        assert_eq!(dist.cdf(1.9), 0.0);
        assert_eq!(dist.cdf(2.1), 1.0);
    }

    #[test]
    fn normal_cdf_matches_known_values() {
        let dist = Normal::new(0.0, 1.0).unwrap();
        assert!((dist.cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((dist.cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((dist.cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn prob_in_is_consistent_with_cdf() {
        let dist = Normal::new(0.06, 0.0198).unwrap();
        // Probability of a Type-1 collision for nearest neighbors
        // separated by one ideal 0.06 GHz step at sigma_f = 0.014:
        // detuning ~ N(0.06, (0.014*sqrt2)^2), threshold 0.017.
        let p = dist.prob_in(-0.017, 0.017);
        assert!(p > 0.005 && p < 0.03, "p = {p}");
        assert_eq!(dist.prob_in(1.0, -1.0), 0.0);
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }

    #[test]
    fn lognormal_from_mean_median_matches_paper_link_stats() {
        // Gold et al. link infidelity: mean 0.075, median 0.056.
        let dist = LogNormal::from_mean_median(0.075, 0.056).unwrap();
        assert!((dist.mean() - 0.075).abs() < 1e-12);
        assert!((dist.median() - 0.056).abs() < 1e-12);
        let mut rng = Seed(3).rng();
        let samples: Vec<f64> = (0..100_000).map(|_| dist.sample(&mut rng)).collect();
        assert!((mean(&samples) - 0.075).abs() < 3e-3);
        let mut sorted = samples;
        sorted.sort_by(f64::total_cmp);
        let med = sorted[sorted.len() / 2];
        assert!((med - 0.056).abs() < 2e-3);
    }

    #[test]
    fn lognormal_rejects_mean_below_median() {
        assert!(LogNormal::from_mean_median(0.05, 0.056).is_err());
        assert!(LogNormal::from_mean_median(0.05, 0.0).is_err());
    }

    #[test]
    fn standard_normal_is_symmetric() {
        let mut rng = Seed(17).rng();
        let samples: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let positive = samples.iter().filter(|x| **x > 0.0).count();
        let ratio = positive as f64 / samples.len() as f64;
        assert!((ratio - 0.5).abs() < 0.01, "ratio = {ratio}");
    }
}
