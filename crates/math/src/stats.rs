//! Summary statistics over `f64` samples.
//!
//! Used throughout the workspace: Monte Carlo yield fractions, per-device
//! average infidelity `E_avg`, population comparisons, and the Fig. 3(b)
//! box-plot reproduction.

/// The arithmetic mean of `samples`. Returns `NaN` for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// The unbiased sample variance. Returns `NaN` for fewer than two samples.
pub fn variance(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return f64::NAN;
    }
    let m = mean(samples);
    samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (samples.len() - 1) as f64
}

/// The unbiased sample standard deviation.
pub fn std_dev(samples: &[f64]) -> f64 {
    variance(samples).sqrt()
}

/// The median of `samples`. Returns `NaN` for an empty slice.
pub fn median(samples: &[f64]) -> f64 {
    quantile(samples, 0.5)
}

/// The `q`-quantile (`0 <= q <= 1`) with linear interpolation between
/// order statistics (the same convention as NumPy's default).
///
/// Returns `NaN` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or NaN.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0, 1]");
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    quantile_sorted(&sorted, q)
}

/// [`quantile`] over an already-sorted slice (ascending). Useful when many
/// quantiles are read from one sample set.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0, 1]");
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A five-number summary plus mean, as drawn by a box plot.
///
/// Whiskers follow the Tukey convention: the most extreme samples within
/// 1.5 × IQR of the box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxPlot {
    /// Lower whisker (smallest sample ≥ Q1 − 1.5·IQR).
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (largest sample ≤ Q3 + 1.5·IQR).
    pub whisker_hi: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of samples outside the whiskers.
    pub outliers: usize,
}

impl BoxPlot {
    /// Computes the box-plot summary of `samples`.
    ///
    /// Returns `None` for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Option<BoxPlot> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q1 = quantile_sorted(&sorted, 0.25);
        let med = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Whiskers snap to the most extreme samples inside the fences,
        // clamped to the box edges: with interpolated quartiles a
        // sparse tail can leave no sample between a fence and its
        // quartile, and a whisker must never extend past its box edge.
        let whisker_lo =
            sorted.iter().copied().find(|x| *x >= lo_fence).unwrap_or(sorted[0]).min(q1);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|x| *x <= hi_fence)
            .unwrap_or(sorted[sorted.len() - 1])
            .max(q3);
        let outliers = sorted.iter().filter(|x| **x < lo_fence || **x > hi_fence).count();
        Some(BoxPlot {
            whisker_lo,
            q1,
            median: med,
            q3,
            whisker_hi,
            mean: mean(samples),
            outliers,
        })
    }

    /// The interquartile range `Q3 − Q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl std::fmt::Display for BoxPlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.4} |{:.4} {:.4} {:.4}| {:.4}] mean {:.4}",
            self.whisker_lo, self.q1, self.median, self.q3, self.whisker_hi, self.mean
        )
    }
}

/// A Wilson-score 95 % confidence interval for a binomial proportion.
///
/// Yield is a proportion out of a finite batch; the Wilson interval is
/// well-behaved even at 0 % and 100 % observed yield (both occur in the
/// paper: monolithic yields hit zero above ~400 qubits).
pub fn wilson_interval(successes: usize, trials: usize) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = 1.96_f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_nan() {
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn mean_and_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert!(variance(&[1.0]).is_nan());
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 10.0);
        assert_eq!(quantile(&xs, 0.25), 2.5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn boxplot_of_uniform_ramp() {
        let xs: Vec<f64> = (0..101).map(f64::from).collect();
        let bp = BoxPlot::from_samples(&xs).unwrap();
        assert_eq!(bp.median, 50.0);
        assert_eq!(bp.q1, 25.0);
        assert_eq!(bp.q3, 75.0);
        assert_eq!(bp.whisker_lo, 0.0);
        assert_eq!(bp.whisker_hi, 100.0);
        assert_eq!(bp.outliers, 0);
        assert_eq!(bp.iqr(), 50.0);
    }

    #[test]
    fn boxplot_flags_outliers() {
        let mut xs: Vec<f64> = (0..100).map(f64::from).collect();
        xs.push(10_000.0);
        let bp = BoxPlot::from_samples(&xs).unwrap();
        assert_eq!(bp.outliers, 1);
        assert!(bp.whisker_hi <= 200.0);
    }

    #[test]
    fn boxplot_empty_is_none() {
        assert!(BoxPlot::from_samples(&[]).is_none());
    }

    #[test]
    fn boxplot_display_is_nonempty() {
        let bp = BoxPlot::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert!(!bp.to_string().is_empty());
    }

    #[test]
    fn wilson_interval_brackets_observed_rate() {
        let (lo, hi) = wilson_interval(110, 1000);
        assert!(lo < 0.11 && 0.11 < hi);
        assert!(lo > 0.08 && hi < 0.14);
    }

    #[test]
    fn wilson_interval_handles_extremes() {
        let (lo, hi) = wilson_interval(0, 1000);
        assert_eq!(lo, 0.0);
        assert!(hi < 0.01);
        let (lo, hi) = wilson_interval(1000, 1000);
        assert!(lo > 0.99);
        assert_eq!(hi, 1.0);
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
    }
}
