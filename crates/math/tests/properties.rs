//! Property tests for the numeric substrate.

use proptest::prelude::*;

use chipletqc_math::combinatorics::{
    factor_pairs, ln_factorial, log10_binomial, log10_permutations,
};
use chipletqc_math::dist::{LogNormal, Normal};
use chipletqc_math::histogram::{Binning, SampleHistogram};
use chipletqc_math::logspace::LogProduct;
use chipletqc_math::rng::Seed;
use chipletqc_math::stats::{mean, median, quantile, wilson_interval, BoxPlot};

proptest! {
    #[test]
    fn normal_samples_stay_within_eight_sigma(
        mean_v in -10.0f64..10.0,
        sigma in 0.0f64..5.0,
        seed in 0u64..1000,
    ) {
        let dist = Normal::new(mean_v, sigma).unwrap();
        let mut rng = Seed(seed).rng();
        for _ in 0..64 {
            let x = dist.sample(&mut rng);
            prop_assert!(x.is_finite());
            prop_assert!((x - mean_v).abs() <= sigma * 8.0 + 1e-12);
        }
    }

    #[test]
    fn normal_cdf_is_monotone(mu in -5.0f64..5.0, sigma in 0.01f64..3.0, a in -9.0f64..9.0, b in -9.0f64..9.0) {
        let dist = Normal::new(mu, sigma).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(dist.cdf(lo) <= dist.cdf(hi) + 1e-12);
        prop_assert!(dist.prob_in(lo, hi) >= 0.0);
        prop_assert!(dist.prob_in(lo, hi) <= 1.0 + 1e-12);
    }

    #[test]
    fn lognormal_mean_median_roundtrip(median_v in 0.001f64..0.5, stretch in 1.0f64..4.0) {
        let mean_v = median_v * stretch;
        let dist = LogNormal::from_mean_median(mean_v, median_v).unwrap();
        prop_assert!((dist.mean() - mean_v).abs() < 1e-9);
        prop_assert!((dist.median() - median_v).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed(
        mut xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        xs.sort_by(f64::total_cmp);
        prop_assert!(a >= xs[0] - 1e-9);
        prop_assert!(b <= xs[xs.len() - 1] + 1e-9);
        // Median sits between mean-of-extremes bounds.
        prop_assert!(median(&xs) >= xs[0] - 1e-9 && median(&xs) <= xs[xs.len() - 1] + 1e-9);
    }

    #[test]
    fn boxplot_orders_its_five_numbers(xs in prop::collection::vec(-1e3f64..1e3, 2..200)) {
        let bp = BoxPlot::from_samples(&xs).unwrap();
        prop_assert!(bp.whisker_lo <= bp.q1 + 1e-9);
        prop_assert!(bp.q1 <= bp.median + 1e-9);
        prop_assert!(bp.median <= bp.q3 + 1e-9);
        prop_assert!(bp.q3 <= bp.whisker_hi + 1e-9);
        prop_assert!(bp.iqr() >= -1e-9);
    }

    #[test]
    fn wilson_interval_contains_point_estimate(successes in 0usize..500, extra in 0usize..500) {
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let (lo, hi) = wilson_interval(successes, trials);
        let p = successes as f64 / trials as f64;
        prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn log_product_is_order_independent(ps in prop::collection::vec(0.001f64..1.0, 1..50)) {
        let mut fwd = LogProduct::one();
        for &p in &ps {
            fwd.mul_prob(p);
        }
        let mut rev = LogProduct::one();
        for &p in ps.iter().rev() {
            rev.mul_prob(p);
        }
        prop_assert!((fwd.ln() - rev.ln()).abs() < 1e-9);
        prop_assert_eq!(fwd.factors(), ps.len());
        // mul_prob_pow(p, n) == n * mul_prob(p).
        let mut pow = LogProduct::one();
        pow.mul_prob_pow(ps[0], 7);
        prop_assert!((pow.ln() - 7.0 * ps[0].ln()).abs() < 1e-9);
    }

    #[test]
    fn factorial_is_monotone_and_superadditive(n in 1u64..100_000) {
        prop_assert!(ln_factorial(n + 1) > ln_factorial(n));
        // P(n, k) <= n^k in log10.
        let k = (n % 20) + 1;
        prop_assert!(log10_permutations(n + 20, k) <= (k as f64) * ((n + 20) as f64).log10() + 1e-9);
        prop_assert!(log10_binomial(n + 20, k) <= log10_permutations(n + 20, k) + 1e-9);
    }

    #[test]
    fn factor_pairs_multiply_back(n in 1usize..5000) {
        let pairs = factor_pairs(n);
        prop_assert!(!pairs.is_empty());
        for (a, b) in &pairs {
            prop_assert_eq!(a * b, n);
            prop_assert!(a <= b);
        }
        // Most-square pair first.
        let (k, m) = pairs[0];
        for (a, b) in &pairs[1..] {
            prop_assert!(m - k <= b - a);
        }
    }

    #[test]
    fn histogram_preserves_samples(keys in prop::collection::vec(0.0f64..2.0, 1..100)) {
        let mut h = SampleHistogram::new(Binning::new(0.0, 0.1).unwrap());
        for (i, &k) in keys.iter().enumerate() {
            h.insert(k, i as f64);
        }
        prop_assert_eq!(h.len(), keys.len());
        // Every stored sample is findable via its key's bin.
        for (i, &k) in keys.iter().enumerate() {
            prop_assert!(h.samples_for(k).contains(&(i as f64)));
        }
    }

    #[test]
    fn seed_split_tree_has_no_collisions(root in 0u64..1000) {
        let seed = Seed(root);
        let mut children: Vec<u64> = (0..64).map(|i| seed.split(i).0).collect();
        children.push(seed.split_str("a").0);
        children.push(seed.split_str("b").0);
        children.sort_unstable();
        children.dedup();
        prop_assert_eq!(children.len(), 66);
    }
}

#[test]
fn mean_of_constant_is_constant() {
    assert_eq!(mean(&[3.5; 17]), 3.5);
}
